package checkpoint

import (
	"bytes"
	"encoding/gob"
	"errors"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"syscall"
	"testing"

	"repro/internal/diskfault"
	"repro/internal/grn"
)

func testFP() Fingerprint {
	return Fingerprint{
		Genes: 100, Samples: 300, Order: 3, Bins: 10,
		Permutations: 30, NullSamplePairs: 500, TileSize: 32,
		Alpha: 0.01, Seed: 7,
	}
}

func TestNewStateAndRemaining(t *testing.T) {
	s := NewState(testFP(), 5)
	if s.Remaining() != 5 {
		t.Fatalf("Remaining = %d, want 5", s.Remaining())
	}
	s.Done[1] = true
	s.Done[3] = true
	if s.Remaining() != 3 {
		t.Fatalf("Remaining = %d, want 3", s.Remaining())
	}
}

func TestValidate(t *testing.T) {
	s := NewState(testFP(), 4)
	if err := s.Validate(testFP(), 4); err != nil {
		t.Fatal(err)
	}
	other := testFP()
	other.Seed = 8
	if err := s.Validate(other, 4); err == nil {
		t.Fatal("fingerprint mismatch should fail")
	}
	// NullSamplePairs changes the pooled-null threshold, so a checkpoint
	// saved under one value must not resume under another.
	other = testFP()
	other.NullSamplePairs = 200
	if err := s.Validate(other, 4); err == nil {
		t.Fatal("NullSamplePairs mismatch should fail")
	}
	if err := s.Validate(testFP(), 5); err == nil {
		t.Fatal("tile count mismatch should fail")
	}
	s.EvalsPerTile = s.EvalsPerTile[:3]
	if err := s.Validate(testFP(), 4); err == nil {
		t.Fatal("evals length mismatch should fail")
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	s := NewState(testFP(), 3)
	s.Threshold = 0.125
	s.NullSize = 15000
	s.Done[0] = true
	s.EvalsPerTile[0] = 42
	s.Edges = []grn.Edge{{I: 1, J: 2, Weight: 0.75}}
	var buf bytes.Buffer
	if err := Save(&buf, s); err != nil {
		t.Fatal(err)
	}
	back, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Threshold != 0.125 || back.NullSize != 15000 {
		t.Fatalf("threshold/null = %v/%d", back.Threshold, back.NullSize)
	}
	if !back.Done[0] || back.Done[1] || back.EvalsPerTile[0] != 42 {
		t.Fatalf("tiles = %v / %v", back.Done, back.EvalsPerTile)
	}
	if len(back.Edges) != 1 || back.Edges[0] != (grn.Edge{I: 1, J: 2, Weight: 0.75}) {
		t.Fatalf("edges = %v", back.Edges)
	}
	if err := back.Validate(testFP(), 3); err != nil {
		t.Fatal(err)
	}
}

func TestLoadGarbage(t *testing.T) {
	if _, err := Load(strings.NewReader("not a gob stream")); err == nil {
		t.Fatal("garbage should fail to load")
	}
}

func TestLoadInconsistent(t *testing.T) {
	s := NewState(testFP(), 3)
	s.EvalsPerTile = s.EvalsPerTile[:2]
	var buf bytes.Buffer
	if err := Save(&buf, s); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(&buf); err == nil {
		t.Fatal("inconsistent lengths should fail to load")
	}
}

func TestFileRoundTripAndMissing(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "run.ckpt")

	// Missing file is a fresh run.
	got, err := LoadFile(path)
	if err != nil || got != nil {
		t.Fatalf("missing file: %v, %v", got, err)
	}

	s := NewState(testFP(), 2)
	s.Done[1] = true
	if err := SaveFile(path, s); err != nil {
		t.Fatal(err)
	}
	back, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if back == nil || !back.Done[1] {
		t.Fatalf("reloaded state = %+v", back)
	}

	// Atomic write: no temp litter left behind (first save has nothing
	// to rotate, so the checkpoint itself is the only entry).
	assertEntries(t, dir, "run.ckpt")

	// Overwrite with progress keeps the file loadable and rotates the
	// old snapshot to the last-good slot.
	s.Done[0] = true
	if err := SaveFile(path, s); err != nil {
		t.Fatal(err)
	}
	back, err = LoadFile(path)
	if err != nil || back.Remaining() != 0 {
		t.Fatalf("after overwrite: %+v, %v", back, err)
	}
	assertEntries(t, dir, "run.ckpt", "run.ckpt.prev")

	// The rotated copy is the previous snapshot.
	prev, err := LoadFileFS(nil, PrevPath(path))
	if err != nil || prev == nil || prev.Remaining() != 1 {
		t.Fatalf("rotated snapshot: %+v, %v", prev, err)
	}

	// Remove clears both copies.
	if err := Remove(path); err != nil {
		t.Fatal(err)
	}
	assertEntries(t, dir)
	if err := Remove(path); err != nil {
		t.Fatalf("Remove on missing files: %v", err)
	}
}

// assertEntries checks dir holds exactly the named files.
func assertEntries(t *testing.T, dir string, want ...string) {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, e := range entries {
		names = append(names, e.Name())
	}
	sort.Strings(names)
	sort.Strings(want)
	if strings.Join(names, ",") != strings.Join(want, ",") {
		t.Fatalf("directory entries = %v, want %v", names, want)
	}
}

func TestSaveFileBadDir(t *testing.T) {
	if err := SaveFile("/nonexistent-dir-xyz/run.ckpt", NewState(testFP(), 1)); err == nil {
		t.Fatal("unwritable directory should error")
	}
}

func TestFrameFormat(t *testing.T) {
	s := NewState(testFP(), 2)
	frame, err := Encode(s)
	if err != nil {
		t.Fatal(err)
	}
	if string(frame[:4]) != "TNGC" {
		t.Fatalf("magic = %q", frame[:4])
	}
	back, err := Decode(frame)
	if err != nil {
		t.Fatal(err)
	}
	if err := back.Validate(testFP(), 2); err != nil {
		t.Fatal(err)
	}
	// Any single flipped bit in the frame must fail decode.
	for _, off := range []int{0, 5, 10, 17, headerLen, len(frame) - 1} {
		bad := append([]byte(nil), frame...)
		bad[off] ^= 0x40
		if _, err := Decode(bad); !errors.Is(err, diskfault.ErrCorrupt) {
			t.Fatalf("flip at %d: got %v, want ErrCorrupt", off, err)
		}
	}
	// Truncations at every boundary fail, never panic.
	for n := 0; n < len(frame); n++ {
		if _, err := Decode(frame[:n]); !errors.Is(err, diskfault.ErrCorrupt) {
			t.Fatalf("truncate to %d: got %v, want ErrCorrupt", n, err)
		}
	}
}

func TestLoadLegacyV1(t *testing.T) {
	// A pre-v2 checkpoint is a bare gob stream with no frame; it must
	// stay readable.
	s := NewState(testFP(), 3)
	s.Done[2] = true
	s.Threshold = 0.5
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(s); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "legacy.ckpt")
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	back, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if back == nil || !back.Done[2] || back.Threshold != 0.5 {
		t.Fatalf("legacy state = %+v", back)
	}
}

func TestLoadFileCorruptFallsBackToPrev(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "run.ckpt")
	s := NewState(testFP(), 2)
	if err := SaveFile(path, s); err != nil {
		t.Fatal(err)
	}
	s.Done[0] = true
	if err := SaveFile(path, s); err != nil {
		t.Fatal(err)
	}

	// Corrupt the primary: load silently falls back to the rotation.
	if err := os.WriteFile(path, []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	back, err := LoadFile(path)
	if err != nil {
		t.Fatalf("fallback load: %v", err)
	}
	if back == nil || back.Remaining() != 2 {
		t.Fatalf("fallback state = %+v, want the pre-rotation snapshot", back)
	}

	// Corrupt the rotation too: now a typed CorruptError.
	if err := os.WriteFile(PrevPath(path), []byte("also garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	_, err = LoadFile(path)
	var ce *CorruptError
	if !errors.As(err, &ce) {
		t.Fatalf("got %v, want *CorruptError", err)
	}
	if !errors.Is(err, diskfault.ErrCorrupt) {
		t.Fatalf("got %v, want ErrCorrupt in chain", err)
	}

	// Missing primary with a valid rotation still resumes.
	valid, err := Encode(s)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(PrevPath(path), valid, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.Remove(path); err != nil {
		t.Fatal(err)
	}
	back, err = LoadFile(path)
	if err != nil || back == nil || back.Remaining() != 1 {
		t.Fatalf("prev-only load: %+v, %v", back, err)
	}
}

// TestSaveFileFaultFreshOrValid crash-stops SaveFileFS at every write,
// sync, and rename boundary in turn and checks the published state is
// always fresh-or-valid: either copy loads, or the load is a clean
// fresh start — never a torn file accepted as truth.
func TestSaveFileFaultFreshOrValid(t *testing.T) {
	prior := NewState(testFP(), 2)
	next := NewState(testFP(), 2)
	next.Done[0] = true

	for _, torn := range []int{1, 2, 3} { // the save issues few writes; over-count just never fires
		for _, tornBytes := range []int{0, 1, 7} {
			dir := t.TempDir()
			path := filepath.Join(dir, "run.ckpt")
			if err := SaveFile(path, prior); err != nil {
				t.Fatal(err)
			}
			plan := &diskfault.Plan{Torn: &diskfault.TornSpec{K: int64(torn), Bytes: tornBytes}}
			err := SaveFileFS(plan.FS(nil), path, next)
			if plan.Crashed() {
				if err == nil {
					t.Fatalf("torn=%d: crash-stopped save reported success", torn)
				}
				if !errors.Is(err, diskfault.ErrInjected) {
					t.Fatalf("torn=%d: got %v, want injected error", torn, err)
				}
			} else if err != nil {
				t.Fatalf("torn=%d bytes=%d: %v", torn, tornBytes, err)
			}
			back, lerr := LoadFile(path)
			if lerr != nil {
				t.Fatalf("torn=%d bytes=%d: post-crash load: %v", torn, tornBytes, lerr)
			}
			if back == nil {
				t.Fatalf("torn=%d bytes=%d: prior snapshot lost", torn, tornBytes)
			}
		}
	}

	// Same sweep against rename faults: the prior snapshot must survive.
	for k := int64(1); k <= 2; k++ {
		dir := t.TempDir()
		path := filepath.Join(dir, "run.ckpt")
		if err := SaveFile(path, prior); err != nil {
			t.Fatal(err)
		}
		plan := &diskfault.Plan{Fail: &diskfault.FailSpec{Op: diskfault.OpRename, K: k}}
		if err := SaveFileFS(plan.FS(nil), path, next); err == nil {
			t.Fatalf("rename fault %d: save should fail", k)
		}
		back, err := LoadFile(path)
		if err != nil || back == nil {
			t.Fatalf("rename fault %d: post-fault load: %+v, %v", k, back, err)
		}
	}
}

func TestSaveFileENOSPCLeavesNoTornCheckpoint(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "run.ckpt")
	plan := &diskfault.Plan{Fail: &diskfault.FailSpec{Op: diskfault.OpWrite, K: 1, Err: syscall.ENOSPC}}
	err := SaveFileFS(plan.FS(nil), path, NewState(testFP(), 2))
	if !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("got %v, want ENOSPC", err)
	}
	// Nothing published, temp file cleaned up.
	assertEntries(t, dir)
	if back, err := LoadFile(path); err != nil || back != nil {
		t.Fatalf("after ENOSPC: %+v, %v", back, err)
	}
}
