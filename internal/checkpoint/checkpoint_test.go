package checkpoint

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/grn"
)

func testFP() Fingerprint {
	return Fingerprint{
		Genes: 100, Samples: 300, Order: 3, Bins: 10,
		Permutations: 30, NullSamplePairs: 500, TileSize: 32,
		Alpha: 0.01, Seed: 7,
	}
}

func TestNewStateAndRemaining(t *testing.T) {
	s := NewState(testFP(), 5)
	if s.Remaining() != 5 {
		t.Fatalf("Remaining = %d, want 5", s.Remaining())
	}
	s.Done[1] = true
	s.Done[3] = true
	if s.Remaining() != 3 {
		t.Fatalf("Remaining = %d, want 3", s.Remaining())
	}
}

func TestValidate(t *testing.T) {
	s := NewState(testFP(), 4)
	if err := s.Validate(testFP(), 4); err != nil {
		t.Fatal(err)
	}
	other := testFP()
	other.Seed = 8
	if err := s.Validate(other, 4); err == nil {
		t.Fatal("fingerprint mismatch should fail")
	}
	// NullSamplePairs changes the pooled-null threshold, so a checkpoint
	// saved under one value must not resume under another.
	other = testFP()
	other.NullSamplePairs = 200
	if err := s.Validate(other, 4); err == nil {
		t.Fatal("NullSamplePairs mismatch should fail")
	}
	if err := s.Validate(testFP(), 5); err == nil {
		t.Fatal("tile count mismatch should fail")
	}
	s.EvalsPerTile = s.EvalsPerTile[:3]
	if err := s.Validate(testFP(), 4); err == nil {
		t.Fatal("evals length mismatch should fail")
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	s := NewState(testFP(), 3)
	s.Threshold = 0.125
	s.NullSize = 15000
	s.Done[0] = true
	s.EvalsPerTile[0] = 42
	s.Edges = []grn.Edge{{I: 1, J: 2, Weight: 0.75}}
	var buf bytes.Buffer
	if err := Save(&buf, s); err != nil {
		t.Fatal(err)
	}
	back, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Threshold != 0.125 || back.NullSize != 15000 {
		t.Fatalf("threshold/null = %v/%d", back.Threshold, back.NullSize)
	}
	if !back.Done[0] || back.Done[1] || back.EvalsPerTile[0] != 42 {
		t.Fatalf("tiles = %v / %v", back.Done, back.EvalsPerTile)
	}
	if len(back.Edges) != 1 || back.Edges[0] != (grn.Edge{I: 1, J: 2, Weight: 0.75}) {
		t.Fatalf("edges = %v", back.Edges)
	}
	if err := back.Validate(testFP(), 3); err != nil {
		t.Fatal(err)
	}
}

func TestLoadGarbage(t *testing.T) {
	if _, err := Load(strings.NewReader("not a gob stream")); err == nil {
		t.Fatal("garbage should fail to load")
	}
}

func TestLoadInconsistent(t *testing.T) {
	s := NewState(testFP(), 3)
	s.EvalsPerTile = s.EvalsPerTile[:2]
	var buf bytes.Buffer
	if err := Save(&buf, s); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(&buf); err == nil {
		t.Fatal("inconsistent lengths should fail to load")
	}
}

func TestFileRoundTripAndMissing(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "run.ckpt")

	// Missing file is a fresh run.
	got, err := LoadFile(path)
	if err != nil || got != nil {
		t.Fatalf("missing file: %v, %v", got, err)
	}

	s := NewState(testFP(), 2)
	s.Done[1] = true
	if err := SaveFile(path, s); err != nil {
		t.Fatal(err)
	}
	back, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if back == nil || !back.Done[1] {
		t.Fatalf("reloaded state = %+v", back)
	}

	// Atomic write: no temp litter left behind.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("directory has %d entries, want 1", len(entries))
	}

	// Overwrite with progress keeps the file loadable.
	s.Done[0] = true
	if err := SaveFile(path, s); err != nil {
		t.Fatal(err)
	}
	back, err = LoadFile(path)
	if err != nil || back.Remaining() != 0 {
		t.Fatalf("after overwrite: %+v, %v", back, err)
	}
}

func TestSaveFileBadDir(t *testing.T) {
	if err := SaveFile("/nonexistent-dir-xyz/run.ckpt", NewState(testFP(), 1)); err == nil {
		t.Fatal("unwritable directory should error")
	}
}
