package checkpoint

import (
	"bytes"
	"errors"
	"testing"

	"repro/internal/diskfault"
	"repro/internal/grn"
)

// FuzzCheckpointLoad feeds arbitrary bytes — seeded with valid v2
// frames, legacy v1 gobs, and systematic truncations/bit-flips of both
// — through Decode. The invariant: never panic, and never hand back a
// state that fails its own consistency checks. Any mutation of a valid
// frame must surface as a typed ErrCorrupt, not as silently different
// scan state.
func FuzzCheckpointLoad(f *testing.F) {
	s := NewState(testFP(), 4)
	s.Done[0], s.Done[2] = true, true
	s.Threshold = 0.25
	s.NullSize = 9000
	s.Edges = []grn.Edge{{I: 0, J: 3, Weight: 0.5}, {I: 1, J: 2, Weight: 0.75}}
	s.EvalsPerTile[0] = 17
	frame, err := Encode(s)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(frame)
	f.Add(frame[:len(frame)-3])
	f.Add(frame[:headerLen])
	f.Add(frame[:3])
	legacy := append([]byte(nil), frame[headerLen:]...) // bare gob payload = legacy v1
	f.Add(legacy)
	f.Add(legacy[:len(legacy)/2])
	flipped := append([]byte(nil), frame...)
	flipped[headerLen+5] ^= 0x10
	f.Add(flipped)
	f.Add([]byte{})
	f.Add([]byte("TNGC"))
	f.Add([]byte("complete garbage that is neither frame nor gob"))

	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := Decode(data)
		if err != nil {
			if got != nil {
				t.Fatal("Decode returned both state and error")
			}
			if !errors.Is(err, diskfault.ErrCorrupt) {
				t.Fatalf("Decode error is not typed corruption: %v", err)
			}
			return
		}
		// Whatever decoded must be internally consistent: Load's callers
		// index these slices in lockstep.
		n := len(got.Done)
		if len(got.EvalsPerTile) != n || len(got.PairEvalsPerTile) != n || len(got.ScreenedPerTile) != n {
			t.Fatalf("inconsistent state escaped Decode: %d/%d/%d/%d",
				n, len(got.EvalsPerTile), len(got.PairEvalsPerTile), len(got.ScreenedPerTile))
		}
		// A framed input that decodes must be byte-identical to the known
		// frame modulo its own payload: any accepted v2 frame re-encodes
		// to a frame whose payload passes the same CRC. (Re-encode and
		// re-decode as a cheap involution check.)
		frame2, err := Encode(got)
		if err != nil {
			t.Fatalf("re-encode of accepted state failed: %v", err)
		}
		if _, err := Decode(frame2); err != nil {
			t.Fatalf("re-decode of re-encoded state failed: %v", err)
		}
	})
}

// FuzzCheckpointLoadReader mirrors FuzzCheckpointLoad through the
// io.Reader entry point, which some callers still use.
func FuzzCheckpointLoadReader(f *testing.F) {
	f.Add([]byte("TNGC\x02\x00"))
	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := Load(bytes.NewReader(data))
		if err == nil && got == nil {
			t.Fatal("Load returned neither state nor error")
		}
	})
}
