// Package checkpoint persists and restores the pair-scan state of a
// network-inference run. A whole-genome scan is hours of work at
// cluster or coprocessor scale; the original TINGe deployments
// checkpoint between work blocks so a preempted job resumes instead of
// recomputing 10¹¹ MI kernels. The state is everything phase 4 has
// produced: the phase-3 threshold, the completed-tile bitmap, the
// significant edges found so far, and per-tile evaluation counts.
//
// A Fingerprint of the run parameters guards against resuming with a
// different dataset or configuration, which would silently corrupt the
// result. Files are written atomically (temp file + rename).
package checkpoint

import (
	"encoding/gob"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"repro/internal/grn"
)

// Fingerprint identifies the run a checkpoint belongs to. Every field
// that changes the scan's output is included.
type Fingerprint struct {
	Genes        int
	Samples      int
	Order        int
	Bins         int
	Permutations int
	// NullSamplePairs sizes the pooled null behind the saved Threshold;
	// resuming under a different value would keep a threshold the
	// requested config never produces.
	NullSamplePairs int
	TileSize        int
	Alpha           float64
	Seed            uint64
	// Precision distinguishes float64 and float32 compute paths: their
	// MI values differ by accumulation roundoff, so mixing their tiles
	// in one scan would blend two slightly different estimators. Old
	// checkpoints decode to 0 (float64), matching the path that wrote
	// them.
	Precision uint8
	// Prescreen distinguishes prescreened scans: the emitted network is
	// identical either way, but the per-tile evaluation accounting is
	// not, so mixing sessions would corrupt the counters (and the Phi
	// time model built on them). Old checkpoints decode to false.
	Prescreen bool
}

// State is the resumable scan state.
type State struct {
	Fingerprint Fingerprint
	Threshold   float64
	NullSize    int
	// Done[i] marks pair tile i complete.
	Done []bool
	// Edges holds the significant edges of completed tiles.
	Edges []grn.Edge
	// EvalsPerTile records combined MI evaluation counts (exact pair
	// kernels plus permutation evaluations) of completed tiles — the
	// quantity the Phi time model replays.
	EvalsPerTile []int64
	// PairEvalsPerTile records just the exact-kernel pair evaluations,
	// so resumed runs can report the pair/permutation split exactly.
	// Files written before the split decode nil and are normalized to
	// zeros by Load.
	PairEvalsPerTile []int64
	// ScreenedPerTile records pairs removed by prescreening (all zero
	// with prescreening off). Same nil-normalization as
	// PairEvalsPerTile.
	ScreenedPerTile []int64
}

// NewState initializes an empty state for nTiles tiles.
func NewState(fp Fingerprint, nTiles int) *State {
	return &State{
		Fingerprint:      fp,
		Done:             make([]bool, nTiles),
		EvalsPerTile:     make([]int64, nTiles),
		PairEvalsPerTile: make([]int64, nTiles),
		ScreenedPerTile:  make([]int64, nTiles),
	}
}

// Remaining returns the number of incomplete tiles.
func (s *State) Remaining() int {
	n := 0
	for _, d := range s.Done {
		if !d {
			n++
		}
	}
	return n
}

// PendingTiles returns the indices of incomplete tiles in ascending
// order — the work list a resuming or recovering engine redistributes
// over its surviving workers.
func (s *State) PendingTiles() []int {
	out := make([]int, 0, s.Remaining())
	for i, d := range s.Done {
		if !d {
			out = append(out, i)
		}
	}
	return out
}

// Validate reports whether the state belongs to a run with the given
// fingerprint and tile count.
func (s *State) Validate(fp Fingerprint, nTiles int) error {
	if s.Fingerprint != fp {
		return fmt.Errorf("checkpoint: fingerprint mismatch: saved %+v, run %+v", s.Fingerprint, fp)
	}
	if len(s.Done) != nTiles {
		return fmt.Errorf("checkpoint: tile count mismatch: saved %d, run %d", len(s.Done), nTiles)
	}
	if len(s.EvalsPerTile) != nTiles {
		return fmt.Errorf("checkpoint: evals length mismatch: saved %d, run %d", len(s.EvalsPerTile), nTiles)
	}
	if len(s.PairEvalsPerTile) != nTiles || len(s.ScreenedPerTile) != nTiles {
		return fmt.Errorf("checkpoint: split-counter length mismatch: saved %d/%d, run %d",
			len(s.PairEvalsPerTile), len(s.ScreenedPerTile), nTiles)
	}
	return nil
}

// Save writes the state to w.
func Save(w io.Writer, s *State) error {
	if err := gob.NewEncoder(w).Encode(s); err != nil {
		return fmt.Errorf("checkpoint: encode: %w", err)
	}
	return nil
}

// Load reads a state from r.
func Load(r io.Reader) (*State, error) {
	var s State
	if err := gob.NewDecoder(r).Decode(&s); err != nil {
		return nil, fmt.Errorf("checkpoint: decode: %w", err)
	}
	if len(s.Done) != len(s.EvalsPerTile) {
		return nil, fmt.Errorf("checkpoint: inconsistent state: %d done flags, %d eval counts",
			len(s.Done), len(s.EvalsPerTile))
	}
	// Files written before the pair/permutation counter split carry no
	// per-tile split arrays; normalize them to zeros so resumed runs see
	// consistent lengths (the combined EvalsPerTile stays authoritative).
	if s.PairEvalsPerTile == nil {
		s.PairEvalsPerTile = make([]int64, len(s.Done))
	}
	if s.ScreenedPerTile == nil {
		s.ScreenedPerTile = make([]int64, len(s.Done))
	}
	if len(s.PairEvalsPerTile) != len(s.Done) || len(s.ScreenedPerTile) != len(s.Done) {
		return nil, fmt.Errorf("checkpoint: inconsistent state: %d done flags, %d/%d split counts",
			len(s.Done), len(s.PairEvalsPerTile), len(s.ScreenedPerTile))
	}
	return &s, nil
}

// SaveFile writes the state atomically to path.
func SaveFile(path string, s *State) error {
	tmp, err := os.CreateTemp(filepath.Dir(path), ".ckpt-*")
	if err != nil {
		return fmt.Errorf("checkpoint: %w", err)
	}
	defer os.Remove(tmp.Name())
	if err := Save(tmp, s); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("checkpoint: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("checkpoint: %w", err)
	}
	return nil
}

// LoadFile reads a state from path. A missing file returns
// (nil, nil) — a fresh run, not an error.
func LoadFile(path string) (*State, error) {
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("checkpoint: %w", err)
	}
	defer f.Close()
	return Load(f)
}
