// Package checkpoint persists and restores the pair-scan state of a
// network-inference run. A whole-genome scan is hours of work at
// cluster or coprocessor scale; the original TINGe deployments
// checkpoint between work blocks so a preempted job resumes instead of
// recomputing 10¹¹ MI kernels. The state is everything phase 4 has
// produced: the phase-3 threshold, the completed-tile bitmap, the
// significant edges found so far, and per-tile evaluation counts.
//
// A Fingerprint of the run parameters guards against resuming with a
// different dataset or configuration, which would silently corrupt the
// result.
//
// On disk a checkpoint is a v2 frame: magic "TNGC", format version,
// payload length, and a CRC32C over the gob payload, so a torn or
// bit-flipped file is detected on load instead of silently resuming
// wrong state. Files are published atomically — the frame is written
// to a temp file in one write, fsynced, renamed over the target, and
// the parent directory fsynced — and the previous snapshot is rotated
// to a ".prev" last-good copy that Load falls back to when the primary
// is corrupt. Only when both copies fail does LoadFile return a
// *CorruptError; engines treat that as "start fresh and count it",
// never as a fatal run error. Legacy v1 files (bare gob, no frame)
// remain readable.
package checkpoint

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"

	"repro/internal/diskfault"
	"repro/internal/grn"
)

// Fingerprint identifies the run a checkpoint belongs to. Every field
// that changes the scan's output is included.
type Fingerprint struct {
	Genes        int
	Samples      int
	Order        int
	Bins         int
	Permutations int
	// NullSamplePairs sizes the pooled null behind the saved Threshold;
	// resuming under a different value would keep a threshold the
	// requested config never produces.
	NullSamplePairs int
	TileSize        int
	Alpha           float64
	Seed            uint64
	// Precision distinguishes float64 and float32 compute paths: their
	// MI values differ by accumulation roundoff, so mixing their tiles
	// in one scan would blend two slightly different estimators. Old
	// checkpoints decode to 0 (float64), matching the path that wrote
	// them.
	Precision uint8
	// Prescreen distinguishes prescreened scans: the emitted network is
	// identical either way, but the per-tile evaluation accounting is
	// not, so mixing sessions would corrupt the counters (and the Phi
	// time model built on them). Old checkpoints decode to false.
	Prescreen bool
	// Bootstraps, SubsampleFrac, and EnsembleSeed identify an ensemble
	// run (all zero for single-network scans, which is what old
	// checkpoints decode to). They fix the bootstrap count and the
	// per-bootstrap sample-index draws, so an ensemble checkpoint never
	// resumes under a different subsampling plan. The support cutoff is
	// deliberately excluded: it only thresholds the already-aggregated
	// support counts at the end, so resuming with a different cutoff is
	// sound (and useful — re-derive a consensus without rescanning).
	Bootstraps    int
	SubsampleFrac float64
	EnsembleSeed  uint64
}

// State is the resumable scan state.
type State struct {
	Fingerprint Fingerprint
	Threshold   float64
	NullSize    int
	// Done[i] marks pair tile i complete.
	Done []bool
	// Edges holds the significant edges of completed tiles.
	Edges []grn.Edge
	// EvalsPerTile records combined MI evaluation counts (exact pair
	// kernels plus permutation evaluations) of completed tiles — the
	// quantity the Phi time model replays.
	EvalsPerTile []int64
	// PairEvalsPerTile records just the exact-kernel pair evaluations,
	// so resumed runs can report the pair/permutation split exactly.
	// Files written before the split decode nil and are normalized to
	// zeros by Load.
	PairEvalsPerTile []int64
	// ScreenedPerTile records pairs removed by prescreening (all zero
	// with prescreening off). Same nil-normalization as
	// PairEvalsPerTile.
	ScreenedPerTile []int64
	// EnsembleEdges snapshots the bootstrap support aggregate of an
	// ensemble run. For ensemble checkpoints the unit of work is a whole
	// bootstrap, not a tile: Done is the per-bootstrap bitmap (length
	// Fingerprint.Bootstraps), the per-tile arrays hold per-bootstrap
	// totals, and this table carries the (support, weight-sum) fold of
	// every completed bootstrap in ascending order. nil for
	// single-network scans.
	EnsembleEdges []grn.SupportEdge
	// EnsembleThresholds[b] is bootstrap b's pooled-null I_alpha (0
	// until the bootstrap completes). nil for single-network scans.
	EnsembleThresholds []float64
}

// NewState initializes an empty state for nTiles tiles.
func NewState(fp Fingerprint, nTiles int) *State {
	return &State{
		Fingerprint:      fp,
		Done:             make([]bool, nTiles),
		EvalsPerTile:     make([]int64, nTiles),
		PairEvalsPerTile: make([]int64, nTiles),
		ScreenedPerTile:  make([]int64, nTiles),
	}
}

// Remaining returns the number of incomplete tiles.
func (s *State) Remaining() int {
	n := 0
	for _, d := range s.Done {
		if !d {
			n++
		}
	}
	return n
}

// PendingTiles returns the indices of incomplete tiles in ascending
// order — the work list a resuming or recovering engine redistributes
// over its surviving workers.
func (s *State) PendingTiles() []int {
	out := make([]int, 0, s.Remaining())
	for i, d := range s.Done {
		if !d {
			out = append(out, i)
		}
	}
	return out
}

// Validate reports whether the state belongs to a run with the given
// fingerprint and tile count.
func (s *State) Validate(fp Fingerprint, nTiles int) error {
	if s.Fingerprint != fp {
		return fmt.Errorf("checkpoint: fingerprint mismatch: saved %+v, run %+v", s.Fingerprint, fp)
	}
	if len(s.Done) != nTiles {
		return fmt.Errorf("checkpoint: tile count mismatch: saved %d, run %d", len(s.Done), nTiles)
	}
	if len(s.EvalsPerTile) != nTiles {
		return fmt.Errorf("checkpoint: evals length mismatch: saved %d, run %d", len(s.EvalsPerTile), nTiles)
	}
	if len(s.PairEvalsPerTile) != nTiles || len(s.ScreenedPerTile) != nTiles {
		return fmt.Errorf("checkpoint: split-counter length mismatch: saved %d/%d, run %d",
			len(s.PairEvalsPerTile), len(s.ScreenedPerTile), nTiles)
	}
	if fp.Bootstraps > 0 && len(s.EnsembleThresholds) != nTiles {
		return fmt.Errorf("checkpoint: ensemble threshold length mismatch: saved %d, run %d",
			len(s.EnsembleThresholds), nTiles)
	}
	return nil
}

// v2 frame layout: magic, format version, reserved padding, payload
// length, CRC32C over the payload, then the gob payload itself.
const (
	fileMagic   = "TNGC"
	fileVersion = 2
	headerLen   = 4 + 2 + 2 + 8 + 4
	// maxPayload bounds the declared payload length so a corrupt header
	// cannot drive a huge allocation. Real states are a few MB at most.
	maxPayload = 1 << 32
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// CorruptError reports that a checkpoint file (and its ".prev"
// fallback, when loading through LoadFile) failed integrity or decode
// checks. It wraps diskfault.ErrCorrupt, so
// errors.Is(err, diskfault.ErrCorrupt) identifies corruption
// regardless of which layer surfaced it.
type CorruptError struct {
	Path string
	Err  error
}

func (e *CorruptError) Error() string {
	return fmt.Sprintf("checkpoint: corrupt checkpoint %s: %v", e.Path, e.Err)
}

func (e *CorruptError) Unwrap() error { return e.Err }

func corrupt(path string, err error) error {
	if !errors.Is(err, diskfault.ErrCorrupt) {
		err = fmt.Errorf("%w: %w", diskfault.ErrCorrupt, err)
	}
	return &CorruptError{Path: path, Err: err}
}

// PrevPath returns the last-good rotation path beside path.
func PrevPath(path string) string { return path + ".prev" }

// Encode serializes the state as a v2 frame.
func Encode(s *State) ([]byte, error) {
	var payload bytes.Buffer
	if err := gob.NewEncoder(&payload).Encode(s); err != nil {
		return nil, fmt.Errorf("checkpoint: encode: %w", err)
	}
	frame := make([]byte, headerLen, headerLen+payload.Len())
	copy(frame, fileMagic)
	binary.LittleEndian.PutUint16(frame[4:], fileVersion)
	binary.LittleEndian.PutUint64(frame[8:], uint64(payload.Len()))
	binary.LittleEndian.PutUint32(frame[16:], crc32.Checksum(payload.Bytes(), crcTable))
	return append(frame, payload.Bytes()...), nil
}

// Decode parses a checkpoint from raw file bytes: a v2 frame, or a
// legacy v1 bare-gob file. Every failure wraps diskfault.ErrCorrupt.
func Decode(data []byte) (*State, error) {
	payload := data
	if len(data) >= len(fileMagic) && string(data[:len(fileMagic)]) == string(fileMagic) {
		if len(data) < headerLen {
			return nil, fmt.Errorf("%w: truncated header: %d bytes", diskfault.ErrCorrupt, len(data))
		}
		if v := binary.LittleEndian.Uint16(data[4:]); v != fileVersion {
			return nil, fmt.Errorf("%w: unsupported format version %d", diskfault.ErrCorrupt, v)
		}
		n := binary.LittleEndian.Uint64(data[8:])
		if n > maxPayload || int(n) != len(data)-headerLen {
			return nil, fmt.Errorf("%w: payload length %d does not match file size %d",
				diskfault.ErrCorrupt, n, len(data))
		}
		payload = data[headerLen:]
		if got, want := crc32.Checksum(payload, crcTable), binary.LittleEndian.Uint32(data[16:]); got != want {
			return nil, fmt.Errorf("%w: CRC32C mismatch: computed %08x, stored %08x",
				diskfault.ErrCorrupt, got, want)
		}
	}
	var s State
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&s); err != nil {
		return nil, fmt.Errorf("%w: decode: %w", diskfault.ErrCorrupt, err)
	}
	if len(s.Done) != len(s.EvalsPerTile) {
		return nil, fmt.Errorf("%w: inconsistent state: %d done flags, %d eval counts",
			diskfault.ErrCorrupt, len(s.Done), len(s.EvalsPerTile))
	}
	// Files written before the pair/permutation counter split carry no
	// per-tile split arrays; normalize them to zeros so resumed runs see
	// consistent lengths (the combined EvalsPerTile stays authoritative).
	if s.PairEvalsPerTile == nil {
		s.PairEvalsPerTile = make([]int64, len(s.Done))
	}
	if s.ScreenedPerTile == nil {
		s.ScreenedPerTile = make([]int64, len(s.Done))
	}
	if len(s.PairEvalsPerTile) != len(s.Done) || len(s.ScreenedPerTile) != len(s.Done) {
		return nil, fmt.Errorf("%w: inconsistent state: %d done flags, %d/%d split counts",
			diskfault.ErrCorrupt, len(s.Done), len(s.PairEvalsPerTile), len(s.ScreenedPerTile))
	}
	// Ensemble snapshots carry one threshold slot per bootstrap; a
	// mismatched length means the file does not describe its own Done
	// bitmap.
	if s.EnsembleThresholds != nil && len(s.EnsembleThresholds) != len(s.Done) {
		return nil, fmt.Errorf("%w: inconsistent state: %d done flags, %d ensemble thresholds",
			diskfault.ErrCorrupt, len(s.Done), len(s.EnsembleThresholds))
	}
	return &s, nil
}

// Save writes the state to w as a v2 frame.
func Save(w io.Writer, s *State) error {
	frame, err := Encode(s)
	if err != nil {
		return err
	}
	if _, err := w.Write(frame); err != nil {
		return fmt.Errorf("checkpoint: write: %w", err)
	}
	return nil
}

// Load reads a state from r (v2 frame or legacy v1 bare gob).
func Load(r io.Reader) (*State, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("checkpoint: read: %w", err)
	}
	s, err := Decode(data)
	if err != nil {
		return nil, fmt.Errorf("checkpoint: %w", err)
	}
	return s, nil
}

// SaveFile writes the state atomically and durably to path. See
// SaveFileFS.
func SaveFile(path string, s *State) error {
	return SaveFileFS(diskfault.OS, path, s)
}

// SaveFileFS writes the state to path through fsys (nil: the real
// filesystem): the v2 frame lands in a temp file with a single write,
// is fsynced and renamed over path, and the parent directory is
// fsynced so the rename survives a power cut. An existing snapshot at
// path is first rotated to PrevPath(path); a crash at any single
// boundary therefore leaves either the new file, the previous
// last-good file, or nothing published — never a torn visible
// checkpoint.
func SaveFileFS(fsys diskfault.FS, path string, s *State) (err error) {
	fsys = diskfault.OrOS(fsys)
	frame, err := Encode(s)
	if err != nil {
		return err
	}
	dir := filepath.Dir(path)
	tmp, err := fsys.CreateTemp(dir, ".ckpt-*")
	if err != nil {
		return fmt.Errorf("checkpoint: %w", err)
	}
	tmpName := tmp.Name()
	published := false
	defer func() {
		if !published {
			fsys.Remove(tmpName)
		}
	}()
	if _, werr := tmp.Write(frame); werr != nil {
		tmp.Close()
		return fmt.Errorf("checkpoint: write: %w", werr)
	}
	if serr := tmp.Sync(); serr != nil {
		tmp.Close()
		return fmt.Errorf("checkpoint: sync: %w", serr)
	}
	if cerr := tmp.Close(); cerr != nil {
		return fmt.Errorf("checkpoint: %w", cerr)
	}
	// Rotate the current snapshot to the last-good slot before
	// publishing the new one. A crash between the two renames leaves
	// only .prev — still a valid resume point.
	if rerr := fsys.Rename(path, PrevPath(path)); rerr != nil && !errors.Is(rerr, os.ErrNotExist) {
		return fmt.Errorf("checkpoint: rotate: %w", rerr)
	}
	if rerr := fsys.Rename(tmpName, path); rerr != nil {
		return fmt.Errorf("checkpoint: publish: %w", rerr)
	}
	published = true
	if derr := fsys.SyncDir(dir); derr != nil {
		return fmt.Errorf("checkpoint: sync dir: %w", derr)
	}
	return nil
}

// LoadFile reads a state from path, falling back to the ".prev"
// rotation. See LoadFileFS.
func LoadFile(path string) (*State, error) {
	return LoadFileFS(diskfault.OS, path)
}

// LoadFileFS reads a state from path through fsys (nil: the real
// filesystem). A corrupt or unreadable primary falls back to
// PrevPath(path) — the rotation SaveFileFS maintains. Both files
// missing returns (nil, nil): a fresh run, not an error. A *CorruptError
// is returned only when a copy exists but none passes its integrity
// checks.
func LoadFileFS(fsys diskfault.FS, path string) (*State, error) {
	fsys = diskfault.OrOS(fsys)
	s, primaryErr := loadOne(fsys, path)
	if primaryErr == nil {
		return s, nil
	}
	s, prevErr := loadOne(fsys, PrevPath(path))
	if prevErr == nil {
		return s, nil
	}
	if errors.Is(primaryErr, os.ErrNotExist) {
		if errors.Is(prevErr, os.ErrNotExist) {
			return nil, nil
		}
		return nil, corrupt(PrevPath(path), prevErr)
	}
	if errors.Is(prevErr, os.ErrNotExist) {
		return nil, corrupt(path, primaryErr)
	}
	return nil, corrupt(path, fmt.Errorf("%w (fallback %s: %v)", primaryErr, PrevPath(path), prevErr))
}

// loadOne reads and decodes a single file. Missing files surface as
// os.ErrNotExist for the caller's fallback logic.
func loadOne(fsys diskfault.FS, path string) (*State, error) {
	f, err := fsys.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	data, err := io.ReadAll(f)
	if err != nil {
		return nil, fmt.Errorf("read: %w", err)
	}
	return Decode(data)
}

// Remove deletes the checkpoint at path and its ".prev" rotation.
// Missing files are not an error. See RemoveFS.
func Remove(path string) error {
	return RemoveFS(diskfault.OS, path)
}

// RemoveFS deletes the checkpoint at path and its ".prev" rotation
// through fsys (nil: the real filesystem), returning the first real
// error; missing files are ignored.
func RemoveFS(fsys diskfault.FS, path string) error {
	fsys = diskfault.OrOS(fsys)
	var first error
	for _, p := range []string{path, PrevPath(path)} {
		if err := fsys.Remove(p); err != nil && !errors.Is(err, os.ErrNotExist) && first == nil {
			first = err
		}
	}
	return first
}
