package phi

import (
	"math"
	"testing"

	"repro/internal/tile"
)

func TestDeviceValidate(t *testing.T) {
	good := XeonPhi5110P()
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := XeonE5().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Device{
		{Cores: 0, ThreadsPerCore: 1, VectorLanes: 1, ClockGHz: 1, IssueWidth: 1, SingleThreadIssueGap: 1},
		{Cores: 1, ThreadsPerCore: 0, VectorLanes: 1, ClockGHz: 1, IssueWidth: 1, SingleThreadIssueGap: 1},
		{Cores: 1, ThreadsPerCore: 1, VectorLanes: 0, ClockGHz: 1, IssueWidth: 1, SingleThreadIssueGap: 1},
		{Cores: 1, ThreadsPerCore: 1, VectorLanes: 1, ClockGHz: 0, IssueWidth: 1, SingleThreadIssueGap: 1},
		{Cores: 1, ThreadsPerCore: 1, VectorLanes: 1, ClockGHz: 1, IssueWidth: 0, SingleThreadIssueGap: 1},
		{Cores: 1, ThreadsPerCore: 1, VectorLanes: 1, ClockGHz: 1, IssueWidth: 1, SingleThreadIssueGap: 0.5},
	}
	for i, d := range bad {
		if err := d.Validate(); err == nil {
			t.Fatalf("bad device %d validated", i)
		}
	}
}

func TestSeconds(t *testing.T) {
	d := Device{ClockGHz: 2}
	if got := d.Seconds(2e9); got != 1 {
		t.Fatalf("Seconds = %v, want 1", got)
	}
}

// One thread on a Phi core runs at half issue rate; two threads saturate.
func TestCoreTimeIssueGap(t *testing.T) {
	d := XeonPhi5110P()
	w := Work{ComputeCycles: 1000}
	oneT := d.CoreTime([]Work{w})
	if oneT != 2000 {
		t.Fatalf("1 thread = %v cycles, want 2000 (issue gap)", oneT)
	}
	// Two threads, each half the work: same total compute, full rate.
	twoT := d.CoreTime([]Work{{ComputeCycles: 500}, {ComputeCycles: 500}})
	if twoT != 1000 {
		t.Fatalf("2 threads = %v cycles, want 1000", twoT)
	}
}

func TestCoreTimeLatencyHiding(t *testing.T) {
	d := XeonPhi5110P()
	// Memory-bound thread: stalls dominate at low thread counts.
	one := d.CoreTime([]Work{{ComputeCycles: 100, StallCycles: 900}})
	if one != 1000 {
		t.Fatalf("latency-bound single thread = %v, want 1000", one)
	}
	// Four threads each with a quarter of the work: latency bound
	// (100/4+900/4=250) beats issue bound (4*25=100)… the max picks 250.
	four := d.CoreTime([]Work{
		{ComputeCycles: 25, StallCycles: 225},
		{ComputeCycles: 25, StallCycles: 225},
		{ComputeCycles: 25, StallCycles: 225},
		{ComputeCycles: 25, StallCycles: 225},
	})
	if four != 250 {
		t.Fatalf("4 threads = %v, want 250", four)
	}
	if four >= one {
		t.Fatal("more threads must hide latency")
	}
}

func TestCoreTimeXeonNoGap(t *testing.T) {
	d := XeonE5()
	// IssueWidth 2, gap 1: single thread of 1000 compute takes 1000.
	if got := d.CoreTime([]Work{{ComputeCycles: 1000}}); got != 1000 {
		t.Fatalf("xeon single thread = %v", got)
	}
}

func uniformWork(n int, c, s float64) []Work {
	items := make([]Work, n)
	for i := range items {
		items[i] = Work{ComputeCycles: c, StallCycles: s}
	}
	return items
}

func TestMakespanThreadScalingShape(t *testing.T) {
	d := XeonPhi5110P()
	items := uniformWork(6000, 1000, 0)
	t1 := d.Makespan(items, 1, tile.Dynamic)
	t2 := d.Makespan(items, 2, tile.Dynamic)
	t4 := d.Makespan(items, 4, tile.Dynamic)
	// Compute-bound: 1→2 threads/core doubles throughput; 2→4 flat.
	if r := t1 / t2; math.Abs(r-2) > 0.1 {
		t.Fatalf("t1/t2 = %v, want ~2", r)
	}
	if r := t2 / t4; r > 1.1 || r < 0.9 {
		t.Fatalf("t2/t4 = %v, want ~1 (issue-bound)", r)
	}
}

func TestMakespanMemoryBoundBenefitsFrom4Threads(t *testing.T) {
	d := XeonPhi5110P()
	items := uniformWork(6000, 200, 800)
	t2 := d.Makespan(items, 2, tile.Dynamic)
	t4 := d.Makespan(items, 4, tile.Dynamic)
	if t4 >= t2 {
		t.Fatalf("memory-bound: 4 threads (%v) should beat 2 (%v)", t4, t2)
	}
}

func TestMakespanScalesWithCores(t *testing.T) {
	small := XeonPhi5110P()
	small.Cores = 15
	big := XeonPhi5110P()
	items := uniformWork(6000, 1000, 0)
	ts := small.Makespan(items, 4, tile.Dynamic)
	tb := big.Makespan(items, 4, tile.Dynamic)
	if r := ts / tb; math.Abs(r-4) > 0.2 {
		t.Fatalf("15→60 cores speedup %v, want ~4", r)
	}
}

func TestMakespanDynamicBeatsStaticUnderSkew(t *testing.T) {
	d := XeonPhi5110P()
	// Skew: first half of tiles 10x heavier (contiguous — worst case
	// for block distribution).
	items := make([]Work, 4800)
	for i := range items {
		c := 100.0
		if i < 2400 {
			c = 1000
		}
		items[i] = Work{ComputeCycles: c}
	}
	static := d.Makespan(items, 4, tile.StaticBlock)
	dynamic := d.Makespan(items, 4, tile.Dynamic)
	if dynamic >= static {
		t.Fatalf("dynamic (%v) should beat static-block (%v) under skew", dynamic, static)
	}
}

func TestMakespanPanics(t *testing.T) {
	d := XeonPhi5110P()
	items := uniformWork(10, 1, 0)
	mustPanic(t, func() { d.Makespan(items, 0, tile.Dynamic) })
	mustPanic(t, func() { d.Makespan(items, 5, tile.Dynamic) })
	bad := d
	bad.Cores = 0
	mustPanic(t, func() { bad.Makespan(items, 1, tile.Dynamic) })
}

func mustPanic(t *testing.T, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	f()
}

func TestTileCostVectorizedCheaper(t *testing.T) {
	d := XeonPhi5110P()
	base := KernelParams{Pairs: 64, Samples: 3137, Order: 3, Bins: 10, Perms: 0}
	vec := base
	vec.Vectorized = true
	cv := d.TileCost(vec)
	cs := d.TileCost(base)
	if cv.ComputeCycles >= cs.ComputeCycles {
		t.Fatalf("vectorized (%v) should beat scalar (%v)", cv.ComputeCycles, cs.ComputeCycles)
	}
	// Expected ratio: scalar m·k²·penalty=3137*9*3 vs vec b²·⌈m/16⌉=100*197.
	ratio := cs.ComputeCycles / cv.ComputeCycles
	if ratio < 2 || ratio > 10 {
		t.Fatalf("speedup ratio %v outside plausible band [2,10]", ratio)
	}
}

func TestTileCostScalesWithPerms(t *testing.T) {
	d := XeonPhi5110P()
	p0 := d.TileCost(KernelParams{Pairs: 10, Samples: 100, Order: 3, Bins: 10, Perms: 0, Vectorized: true})
	p9 := d.TileCost(KernelParams{Pairs: 10, Samples: 100, Order: 3, Bins: 10, Perms: 9, Vectorized: true})
	if r := p9.ComputeCycles / p0.ComputeCycles; r < 9 || r > 11 {
		t.Fatalf("10x perms should cost ~10x, got %v", r)
	}
}

func TestTileCostStallsOnlyWhenSpilling(t *testing.T) {
	d := XeonPhi5110P()
	smallTile := d.TileCost(KernelParams{Pairs: 4, Samples: 100, Order: 3, Bins: 10, Vectorized: true})
	if smallTile.StallCycles != 0 {
		t.Fatalf("cache-resident tile should not stall, got %v", smallTile.StallCycles)
	}
	bigTile := d.TileCost(KernelParams{Pairs: 10000, Samples: 3137, Order: 3, Bins: 10, Vectorized: true})
	if bigTile.StallCycles == 0 {
		t.Fatal("spilling tile should stall")
	}
}

func TestTileCostPanicsOnNegative(t *testing.T) {
	d := XeonPhi5110P()
	mustPanic(t, func() { d.TileCost(KernelParams{Pairs: -1}) })
}

func TestTransferTime(t *testing.T) {
	o := PCIeGen2x16()
	if o.TransferTime(0) != 0 {
		t.Fatal("zero bytes should be free")
	}
	one := o.TransferTime(6_000_000_000) // 1 second of bandwidth
	if math.Abs(one-1-o.LatencySec) > 1e-9 {
		t.Fatalf("1GB*6 transfer = %v", one)
	}
	// Latency dominates small transfers.
	small := o.TransferTime(64)
	if small < o.LatencySec {
		t.Fatalf("small transfer %v below latency", small)
	}
	mustPanic(t, func() { o.TransferTime(-1) })
}

func TestPipelineTime(t *testing.T) {
	x := []float64{1, 1, 1}
	c := []float64{2, 2, 2}
	serial := PipelineTime(x, c, false)
	if serial != 9 {
		t.Fatalf("serial = %v, want 9", serial)
	}
	// Double buffered: 1 + max(2,1) + max(2,1) + 2 = 7.
	db := PipelineTime(x, c, true)
	if db != 7 {
		t.Fatalf("double buffered = %v, want 7", db)
	}
	if db >= serial {
		t.Fatal("double buffering must help when compute overlaps transfer")
	}
	if PipelineTime(nil, nil, true) != 0 {
		t.Fatal("empty pipeline should be 0")
	}
	mustPanic(t, func() { PipelineTime([]float64{1}, nil, true) })
}

func TestPipelineComputeBoundApproachesComputeSum(t *testing.T) {
	// When compute dominates, double-buffered time ≈ first transfer +
	// total compute.
	x := []float64{0.1, 0.1, 0.1, 0.1}
	c := []float64{5, 5, 5, 5}
	db := PipelineTime(x, c, true)
	if math.Abs(db-20.1) > 1e-9 {
		t.Fatalf("compute-bound pipeline = %v, want 20.1", db)
	}
}

// End-to-end simulated shape: the full 15,575-gene problem on the
// simulated Phi should land within an order of magnitude of the paper's
// 22 minutes, and the Phi should beat the Xeon model.
func TestWholeGenomeSimulatedTimeShape(t *testing.T) {
	const (
		n     = 15575
		m     = 3137
		tsize = 64
		perms = 30
	)
	tiles := tile.Decompose(n, tsize)
	devPhi := XeonPhi5110P()
	items := make([]Work, len(tiles))
	for i, tl := range tiles {
		items[i] = devPhi.TileCost(KernelParams{
			Pairs: tl.Pairs(), Samples: m, Order: 3, Bins: 10,
			Perms: perms, Vectorized: true,
		})
	}
	secPhi := devPhi.Seconds(devPhi.Makespan(items, 4, tile.Dynamic))
	if secPhi < 120 || secPhi > 12000 {
		t.Fatalf("simulated whole-genome Phi time %v s implausibly far from the paper's ~1320 s", secPhi)
	}
	devXeon := XeonE5()
	itemsX := make([]Work, len(tiles))
	for i, tl := range tiles {
		itemsX[i] = devXeon.TileCost(KernelParams{
			Pairs: tl.Pairs(), Samples: m, Order: 3, Bins: 10,
			Perms: perms, Vectorized: true,
		})
	}
	secXeon := devXeon.Seconds(devXeon.Makespan(itemsX, 2, tile.Dynamic))
	if secPhi >= secXeon {
		t.Fatalf("Phi (%v s) should beat Xeon (%v s) on this kernel", secPhi, secXeon)
	}
}

func BenchmarkMakespan240Threads(b *testing.B) {
	d := XeonPhi5110P()
	items := uniformWork(10000, 1000, 100)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		d.Makespan(items, 4, tile.Dynamic)
	}
}

func TestEnergyModel(t *testing.T) {
	d := XeonPhi5110P()
	idle := d.Energy(10, 0)
	if idle != 1000 { // 100 W x 10 s
		t.Fatalf("idle energy = %v, want 1000 J", idle)
	}
	full := d.Energy(10, 1)
	if full != 2250 { // 225 W x 10 s
		t.Fatalf("full energy = %v, want 2250 J", full)
	}
	half := d.Energy(10, 0.5)
	if half <= idle || half >= full {
		t.Fatalf("half-utilization energy %v outside (%v, %v)", half, idle, full)
	}
	mustPanic(t, func() { d.Energy(1, -0.1) })
	mustPanic(t, func() { d.Energy(1, 1.1) })
	mustPanic(t, func() { d.Energy(-1, 0.5) })
}

// Perf/W: on this kernel the Phi should complete the same work with
// less energy than the dual Xeon despite the similar TDP, because it
// finishes sooner.
func TestPhiEnergyEfficiencyShape(t *testing.T) {
	tiles := tile.Decompose(2000, 32)
	joules := func(d Device, tpc int) float64 {
		items := make([]Work, len(tiles))
		for i, tl := range tiles {
			items[i] = d.TileCost(KernelParams{
				Pairs: tl.Pairs(), Samples: 3137, Order: 3, Bins: 10,
				Perms: 3, Vectorized: true,
			})
		}
		sec := d.Seconds(d.Makespan(items, tpc, tile.Dynamic))
		return d.Energy(sec, 1)
	}
	phiJ := joules(XeonPhi5110P(), 4)
	xeonJ := joules(XeonE5(), 2)
	if phiJ >= xeonJ {
		t.Fatalf("Phi energy %v should beat Xeon %v on this kernel", phiJ, xeonJ)
	}
}

func TestPlanOutOfCoreFits(t *testing.T) {
	d := XeonPhi5110P()
	// Whole-genome weight matrix: 15575*10*3137*4 ≈ 1.95 GB < 4 GB budget.
	plan := d.PlanOutOfCore(15575, 10, 3137)
	if plan.Panels != 1 {
		t.Fatalf("whole genome should fit: %+v", plan)
	}
	if plan.TotalTransferBytes != int64(15575)*10*3137*4 {
		t.Fatalf("transfer bytes = %d", plan.TotalTransferBytes)
	}
}

func TestPlanOutOfCoreSpills(t *testing.T) {
	d := XeonPhi5110P()
	// A 100k-gene genome: 100000*10*3137*4 ≈ 12.5 GB > 8 GB memory.
	plan := d.PlanOutOfCore(100000, 10, 3137)
	if plan.Panels < 2 {
		t.Fatalf("should need panels: %+v", plan)
	}
	total := int64(100000) * 10 * 3137 * 4
	if plan.TotalTransferBytes <= total {
		t.Fatalf("out-of-core must transfer more than once: %d <= %d",
			plan.TotalTransferBytes, total)
	}
	// Two panels must fit in half of memory.
	if 2*plan.PanelBytes > d.MemoryBytes/2+plan.PanelBytes/8 {
		t.Fatalf("panel pair %d exceeds budget %d", 2*plan.PanelBytes, d.MemoryBytes/2)
	}
	// More memory, fewer panels.
	big := d
	big.MemoryBytes = 64 << 30
	if p2 := big.PlanOutOfCore(100000, 10, 3137); p2.Panels >= plan.Panels {
		t.Fatalf("more memory should reduce panels: %d vs %d", p2.Panels, plan.Panels)
	}
}

func TestPlanOutOfCorePanics(t *testing.T) {
	d := XeonPhi5110P()
	mustPanic(t, func() { d.PlanOutOfCore(0, 10, 10) })
	mustPanic(t, func() { d.PlanOutOfCore(10, 0, 10) })
	mustPanic(t, func() { d.PlanOutOfCore(10, 10, -1) })
	noMem := d
	noMem.MemoryBytes = 0
	mustPanic(t, func() { noMem.PlanOutOfCore(10, 10, 10) })
}

func TestPlanTransferGrowthQuadratic(t *testing.T) {
	// Transfer volume should grow ~quadratically once out of core
	// (P panels → P(P+1)/2 loads).
	d := XeonPhi5110P()
	small := d.PlanOutOfCore(50000, 10, 3137)
	big := d.PlanOutOfCore(200000, 10, 3137)
	if big.Panels <= small.Panels {
		t.Fatalf("panels: %d vs %d", big.Panels, small.Panels)
	}
	ratio := float64(big.TotalTransferBytes) / float64(small.TotalTransferBytes)
	if ratio < 4 {
		t.Fatalf("4x genes should cost >= ~4x transfers out of core, got %.1fx", ratio)
	}
}
