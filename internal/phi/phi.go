// Package phi is a discrete performance simulator for the Intel Xeon
// Phi coprocessor (and, with different parameters, a host Xeon) — the
// hardware the paper runs on and this reproduction does not have.
//
// The simulator captures the three architectural facts the paper's
// optimization story depends on:
//
//  1. Many simple in-order cores. A Phi core cannot issue instructions
//     from the same hardware thread in consecutive cycles, so a single
//     thread reaches at most half the core's issue rate; at least two
//     resident threads are needed to saturate a core, and more threads
//     additionally hide memory stalls. The paper's threads-per-core
//     scaling figure follows directly.
//  2. A 512-bit VPU: 16 float32 lanes. The vectorized MI kernel costs
//     b²·⌈m/lanes⌉ fused multiply-add issues per pair, while the scalar
//     scatter kernel costs m·k² dependent scalar issues plus a scatter
//     penalty.
//  3. A PCIe offload link. Input tiles must be transferred before
//     compute; double-buffering overlaps transfer i+1 with compute i.
//
// The simulator works on analytic cycle counts: callers describe work
// (tiles with compute and stall cycles), the device maps it onto
// cores×threads with a scheduling policy, and simulated wall time comes
// out. Numerical results are computed exactly by the host engines in
// internal/core; only *time* is simulated. Constants are order-of-
// magnitude calibrated, so shapes (speedup curves, crossovers) are
// meaningful while absolute times are indicative only.
package phi

import (
	"fmt"

	"repro/internal/tile"
)

// Device describes a simulated chip.
type Device struct {
	Name           string
	Cores          int     // physical cores available to the application
	ThreadsPerCore int     // hardware threads per core
	VectorLanes    int     // float32 SIMD lanes
	ClockGHz       float64 // core clock
	// IssueWidth is instructions issued per core per cycle (1 for the
	// Phi's relevant pipe in this model, 4 for a big OoO Xeon core).
	IssueWidth float64
	// SingleThreadIssueGap is the minimum cycles between issues of the
	// same thread (2 on the Phi: back-to-back issue from one thread is
	// impossible; 1 on a Xeon).
	SingleThreadIssueGap float64
	// StallCyclesPerByte models exposed memory latency per byte
	// streamed from DRAM when the working set misses cache.
	StallCyclesPerByte float64
	// L2BytesPerCore is the per-core cache capacity used to decide
	// whether a tile's working set streams from memory.
	L2BytesPerCore int64
	// TDPWatts is the chip's power at full utilization; IdleWatts its
	// floor. Used by Energy for perf/W comparisons — the Phi's actual
	// selling point against clusters.
	TDPWatts  float64
	IdleWatts float64
	// MemoryBytes is the device memory capacity (8 GB GDDR5 on the
	// 5110P). Datasets whose weight matrix exceeds it must stream in
	// gene panels; see PlanOutOfCore.
	MemoryBytes int64
}

// XeonPhi5110P returns the coprocessor model the paper evaluates:
// 60 usable cores (one reserved for the OS), 4 threads/core, 16 lanes.
func XeonPhi5110P() Device {
	return Device{
		Name:                 "Xeon Phi 5110P",
		Cores:                60,
		ThreadsPerCore:       4,
		VectorLanes:          16,
		ClockGHz:             1.053,
		IssueWidth:           1,
		SingleThreadIssueGap: 2,
		StallCyclesPerByte:   0.08,
		L2BytesPerCore:       512 << 10,
		TDPWatts:             225,
		IdleWatts:            100,
		MemoryBytes:          8 << 30,
	}
}

// XeonE5 returns the dual-socket host model the paper compares against:
// 16 big out-of-order cores, 2-way SMT, 8-lane AVX float32.
func XeonE5() Device {
	return Device{
		Name:                 "Xeon E5-2670 x2",
		Cores:                16,
		ThreadsPerCore:       2,
		VectorLanes:          8,
		ClockGHz:             2.6,
		IssueWidth:           2,
		SingleThreadIssueGap: 1,
		StallCyclesPerByte:   0.03,
		L2BytesPerCore:       2560 << 10, // 256K L2 + L3 share
		TDPWatts:             230,        // 2 × 115 W sockets
		IdleWatts:            90,
		MemoryBytes:          128 << 30, // host DRAM
	}
}

// Validate reports configuration errors.
func (d Device) Validate() error {
	switch {
	case d.Cores <= 0:
		return fmt.Errorf("phi: non-positive cores %d", d.Cores)
	case d.ThreadsPerCore <= 0:
		return fmt.Errorf("phi: non-positive threads/core %d", d.ThreadsPerCore)
	case d.VectorLanes <= 0:
		return fmt.Errorf("phi: non-positive lanes %d", d.VectorLanes)
	case d.ClockGHz <= 0:
		return fmt.Errorf("phi: non-positive clock %v", d.ClockGHz)
	case d.IssueWidth <= 0:
		return fmt.Errorf("phi: non-positive issue width %v", d.IssueWidth)
	case d.SingleThreadIssueGap < 1:
		return fmt.Errorf("phi: issue gap %v < 1", d.SingleThreadIssueGap)
	}
	return nil
}

// Seconds converts core cycles to seconds on this device.
func (d Device) Seconds(cycles float64) float64 { return cycles / (d.ClockGHz * 1e9) }

// Energy returns the modeled Joules for running `seconds` of wall time
// at the given utilization in [0,1]: idle floor plus the
// utilization-proportional dynamic share of TDP. It panics on a
// utilization outside [0,1] or negative time.
func (d Device) Energy(seconds, utilization float64) float64 {
	if utilization < 0 || utilization > 1 {
		panic(fmt.Sprintf("phi: utilization %v out of [0,1]", utilization))
	}
	if seconds < 0 {
		panic(fmt.Sprintf("phi: negative duration %v", seconds))
	}
	return seconds * (d.IdleWatts + (d.TDPWatts-d.IdleWatts)*utilization)
}

// Work is one schedulable unit (a pair tile) with its cycle costs for
// one thread executing it alone.
type Work struct {
	ComputeCycles float64 // issue-bound cycles
	StallCycles   float64 // exposed memory-latency cycles
}

// CoreTime returns the simulated cycles a single core needs to run the
// per-thread workloads in threads (one entry per resident hardware
// thread; entries may be zero). The bound is the maximum of:
//
//   - issue bound: total compute issued through the core's pipes,
//   - single-thread bound: the busiest thread, stretched by the
//     same-thread issue gap,
//   - latency bound: the busiest thread's compute plus its exposed
//     stalls (other threads' compute hides stalls only up to the issue
//     bound, which the max already captures).
func (d Device) CoreTime(threads []Work) float64 {
	var issueSum, worstGap, worstLat float64
	for _, w := range threads {
		issueSum += w.ComputeCycles
		if g := w.ComputeCycles * d.SingleThreadIssueGap; g > worstGap {
			worstGap = g
		}
		if l := w.ComputeCycles + w.StallCycles; l > worstLat {
			worstLat = l
		}
	}
	issue := issueSum / d.IssueWidth
	t := issue
	if worstGap > t {
		t = worstGap
	}
	if worstLat > t {
		t = worstLat
	}
	return t
}

// Makespan schedules the work items over cores×threadsPerCore logical
// workers using the given policy and returns the simulated cycles until
// the slowest core finishes. threadsPerCore must be in
// [1, d.ThreadsPerCore].
func (d Device) Makespan(items []Work, threadsPerCore int, policy tile.Policy) float64 {
	if err := d.Validate(); err != nil {
		panic(err)
	}
	if threadsPerCore < 1 || threadsPerCore > d.ThreadsPerCore {
		panic(fmt.Sprintf("phi: threadsPerCore %d out of [1,%d]", threadsPerCore, d.ThreadsPerCore))
	}
	workers := d.Cores * threadsPerCore
	assignment := tile.Assign(len(items), workers, policy, func(i int) float64 {
		return items[i].ComputeCycles + items[i].StallCycles
	})
	perThread := make([]Work, workers)
	for w, list := range assignment {
		for _, it := range list {
			perThread[w].ComputeCycles += items[it].ComputeCycles
			perThread[w].StallCycles += items[it].StallCycles
		}
	}
	// Group threads onto cores: worker w runs on core w/threadsPerCore.
	var worst float64
	for c := 0; c < d.Cores; c++ {
		lo := c * threadsPerCore
		ct := d.CoreTime(perThread[lo : lo+threadsPerCore])
		if ct > worst {
			worst = ct
		}
	}
	return worst
}

// KernelParams describes one MI tile computation for cost modeling.
type KernelParams struct {
	Pairs      int  // gene pairs in the tile
	Samples    int  // experiments m
	Order      int  // spline order k
	Bins       int  // histogram bins b
	Perms      int  // permutations computed per pair
	Vectorized bool // dot-product kernel vs scalar scatter kernel
}

// scatterPenalty is the issue-slot multiplier for the scalar kernel's
// data-dependent scatter updates (store-to-load forwarding hazards,
// no SIMD).
const scatterPenalty = 3.0

// TileCost returns the cycle cost of one tile on the device. The counts
// follow the paper's kernel structure:
//
//	vectorized: (1+perms) · b² · ⌈m/lanes⌉ FMA issues per pair
//	            (+ b·⌈m/lanes⌉ gather issues per permutation)
//	scalar:     (1+perms) · m · k² scatter-updates per pair,
//	            each costing scatterPenalty issue slots.
//
// Stall cycles stream the tile's weight rows from memory when the
// working set exceeds the core's cache.
func (d Device) TileCost(p KernelParams) Work {
	if p.Pairs < 0 || p.Samples < 0 || p.Order < 0 || p.Bins < 0 || p.Perms < 0 {
		panic(fmt.Sprintf("phi: negative kernel parameter %+v", p))
	}
	vecsPerRow := float64((p.Samples + d.VectorLanes - 1) / d.VectorLanes)
	reps := float64(1 + p.Perms)
	var compute float64
	if p.Vectorized {
		fma := float64(p.Bins*p.Bins) * vecsPerRow
		gather := float64(p.Perms) * float64(p.Bins) * vecsPerRow
		compute = float64(p.Pairs)*reps*fma + gather
	} else {
		updates := float64(p.Samples) * float64(p.Order*p.Order)
		compute = float64(p.Pairs) * reps * updates * scatterPenalty
	}
	// Working set: 2 genes' dense rows per pair → b rows × m floats × 2,
	// but tiles reuse rows across pairs; charge streaming once per
	// distinct gene row set, approximated as 2·sqrt(pairs) genes.
	genes := 2.0
	for g := 2.0; g*g/4 < float64(p.Pairs); g++ {
		genes = g
	}
	bytes := genes * float64(p.Bins) * float64(p.Samples) * 4
	var stall float64
	if int64(bytes) > d.L2BytesPerCore {
		stall = bytes * d.StallCyclesPerByte * reps
	}
	return Work{ComputeCycles: compute, StallCycles: stall}
}

// OutOfCorePlan describes how a weight matrix larger than device
// memory streams through it in gene panels.
type OutOfCorePlan struct {
	// Panels is the number of gene panels; 1 means the matrix fits and
	// streams once.
	Panels int
	// PanelBytes is one panel's weight-matrix size.
	PanelBytes int64
	// TotalTransferBytes is the bytes moved across the link for the
	// whole pair scan: with P panels, every unordered panel pair must
	// be co-resident; a column-sweep order loads each panel once per
	// sweep, i.e. P(P+1)/2 panel loads.
	TotalTransferBytes int64
}

// PlanOutOfCore sizes the panel decomposition for a weight matrix of
// genes × bins × samples float32 against the device's memory (with
// half of memory reserved for buffers and results — two panels must be
// resident at once). It panics on non-positive dimensions or an
// unconfigured MemoryBytes.
func (d Device) PlanOutOfCore(genes, bins, samples int) OutOfCorePlan {
	if genes <= 0 || bins <= 0 || samples <= 0 {
		panic(fmt.Sprintf("phi: invalid out-of-core dims %d/%d/%d", genes, bins, samples))
	}
	if d.MemoryBytes <= 0 {
		panic("phi: device MemoryBytes not configured")
	}
	total := int64(genes) * int64(bins) * int64(samples) * 4
	budget := d.MemoryBytes / 2
	if total <= budget {
		return OutOfCorePlan{Panels: 1, PanelBytes: total, TotalTransferBytes: total}
	}
	// Two panels co-resident: each panel at most budget/2.
	panels := int((total + budget/2 - 1) / (budget / 2))
	if panels < 2 {
		panels = 2
	}
	panelBytes := (total + int64(panels) - 1) / int64(panels)
	loads := int64(panels) * int64(panels+1) / 2
	return OutOfCorePlan{
		Panels:             panels,
		PanelBytes:         panelBytes,
		TotalTransferBytes: loads * panelBytes,
	}
}

// Offload models the PCIe link between host and coprocessor.
type Offload struct {
	BandwidthGBps float64 // sustained transfer bandwidth
	LatencySec    float64 // per-transfer fixed cost
}

// PCIeGen2x16 returns the link the 5110P uses (~6 GB/s sustained).
func PCIeGen2x16() Offload { return Offload{BandwidthGBps: 6, LatencySec: 20e-6} }

// TransferTime returns the seconds to move the given bytes.
func (o Offload) TransferTime(bytes int64) float64 {
	if bytes < 0 {
		panic(fmt.Sprintf("phi: negative transfer size %d", bytes))
	}
	if bytes == 0 {
		return 0
	}
	return o.LatencySec + float64(bytes)/(o.BandwidthGBps*1e9)
}

// PipelineTime returns the total seconds to process a sequence of
// chunks, each needing a transfer (seconds) before its compute
// (seconds). With double buffering, transfer i+1 overlaps compute i:
//
//	T = x₀ + Σᵢ max(cᵢ, xᵢ₊₁) + c_last   (xᵢ = transfer, cᵢ = compute)
//
// Without double buffering the phases serialize: T = Σ (xᵢ + cᵢ).
// The two slices must have equal length.
func PipelineTime(transfers, computes []float64, doubleBuffered bool) float64 {
	if len(transfers) != len(computes) {
		panic(fmt.Sprintf("phi: pipeline length mismatch %d vs %d", len(transfers), len(computes)))
	}
	if len(transfers) == 0 {
		return 0
	}
	if !doubleBuffered {
		var t float64
		for i := range transfers {
			t += transfers[i] + computes[i]
		}
		return t
	}
	t := transfers[0]
	for i := 0; i < len(computes)-1; i++ {
		step := computes[i]
		if transfers[i+1] > step {
			step = transfers[i+1]
		}
		t += step
	}
	return t + computes[len(computes)-1]
}
