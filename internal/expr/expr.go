// Package expr generates and loads gene-expression datasets.
//
// The paper evaluates on 3,137 Arabidopsis thaliana microarray
// experiments over 15,575 genes — proprietary-scale real data we cannot
// ship. This package substitutes a synthetic generator that (a) matches
// the computational shape (any n×m), and (b) carries a known
// ground-truth regulatory network so the reproduction can additionally
// score recovery accuracy:
//
//   - Topology: a scale-free directed regulatory graph built by
//     preferential attachment (biological GRNs are approximately
//     scale-free), or Erdős–Rényi for controls.
//   - Dynamics: each experiment is a random perturbation of the
//     regulator expressions propagated through sigmoidal regulation
//     functions in topological order, plus additive measurement noise —
//     the standard steady-state GRN simulation recipe.
//
// Datasets round-trip through a simple TSV format compatible with
// typical expression matrices (header row of experiment names, one row
// per gene: name + m values).
package expr

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"

	"repro/internal/mat"
	"repro/internal/perm"
)

// Dataset is an expression matrix with gene names and, for synthetic
// data, the generating ground-truth network.
type Dataset struct {
	Genes []string
	// Expr is n×m: row g holds gene g's expression across m experiments.
	Expr *mat.Dense
	// Truth[g] lists the regulator gene indices of gene g (empty for
	// loaded real data).
	Truth [][]int
}

// N returns the gene count.
func (d *Dataset) N() int { return d.Expr.Rows() }

// M returns the experiment count.
func (d *Dataset) M() int { return d.Expr.Cols() }

// TrueEdgeSet returns the undirected ground-truth edge set as i*n+j keys
// with i<j. Nil Truth yields an empty set.
func (d *Dataset) TrueEdgeSet() map[int64]bool {
	n := d.N()
	set := make(map[int64]bool)
	for g, regs := range d.Truth {
		for _, r := range regs {
			i, j := r, g
			if i > j {
				i, j = j, i
			}
			if i != j {
				set[int64(i)*int64(n)+int64(j)] = true
			}
		}
	}
	return set
}

// Topology selects the ground-truth graph family.
type Topology int

// Supported topologies.
const (
	// ScaleFree grows the regulator graph by preferential attachment.
	ScaleFree Topology = iota
	// ErdosRenyi assigns each gene regulators chosen uniformly.
	ErdosRenyi
)

// GenConfig parameterizes synthetic dataset generation.
type GenConfig struct {
	Genes       int      // number of genes n
	Experiments int      // number of experiments m
	Topology    Topology // regulatory graph family
	// AvgRegulators is the mean in-degree of non-root genes
	// (default 2).
	AvgRegulators int
	// Noise is the measurement noise standard deviation relative to the
	// signal range (default 0.1).
	Noise float64
	// RootFraction is the probability that a gene is an independent
	// root (driven directly by experimental conditions rather than by
	// regulators). Default 0.15. Without multiple roots the whole
	// network is driven by one source and everything correlates with
	// everything.
	RootFraction float64
	// KnockoutFraction is the fraction of experiments that are
	// single-gene knockouts (a random gene is clamped to zero
	// expression before propagation), mimicking perturbation
	// compendia such as the DREAM benchmarks. Default 0
	// (purely observational data, like the paper's microarrays).
	KnockoutFraction float64
	// TimeSeries switches from independent steady-state experiments to
	// one temporal trajectory: column t is time point t, each gene
	// responds to its regulators' levels at t−1, and root genes follow
	// slow mean-reverting random walks. Time-series data enables
	// directed inference via lagged MI (mi.LaggedMI); knockouts do not
	// apply in this mode.
	TimeSeries bool
	// Seed drives all randomness; equal configs generate equal data.
	Seed uint64
}

func (c *GenConfig) fill() error {
	if c.Genes <= 0 {
		return fmt.Errorf("expr: non-positive gene count %d", c.Genes)
	}
	if c.Experiments <= 0 {
		return fmt.Errorf("expr: non-positive experiment count %d", c.Experiments)
	}
	if c.AvgRegulators == 0 {
		c.AvgRegulators = 2
	}
	if c.AvgRegulators < 0 {
		return fmt.Errorf("expr: negative AvgRegulators %d", c.AvgRegulators)
	}
	if c.Noise == 0 {
		c.Noise = 0.1
	}
	if c.Noise < 0 {
		return fmt.Errorf("expr: negative Noise %v", c.Noise)
	}
	if c.RootFraction == 0 {
		c.RootFraction = 0.15
	}
	if c.RootFraction < 0 || c.RootFraction > 1 {
		return fmt.Errorf("expr: RootFraction %v out of [0,1]", c.RootFraction)
	}
	if c.KnockoutFraction < 0 || c.KnockoutFraction > 1 {
		return fmt.Errorf("expr: KnockoutFraction %v out of [0,1]", c.KnockoutFraction)
	}
	return nil
}

// Generate builds a synthetic dataset per the config.
func Generate(cfg GenConfig) (*Dataset, error) {
	if err := cfg.fill(); err != nil {
		return nil, err
	}
	rng := perm.NewRNG(cfg.Seed)
	n, m := cfg.Genes, cfg.Experiments
	truth := buildTopology(cfg, rng.Split(1))
	d := &Dataset{
		Genes: make([]string, n),
		Expr:  mat.NewDense(n, m),
		Truth: truth,
	}
	for g := range d.Genes {
		d.Genes[g] = fmt.Sprintf("G%05d", g)
	}
	simulate(d, cfg, rng.Split(2))
	return d, nil
}

// MustGenerate is Generate but panics on error.
func MustGenerate(cfg GenConfig) *Dataset {
	d, err := Generate(cfg)
	if err != nil {
		panic(err)
	}
	return d
}

// buildTopology returns Truth: regulators per gene, acyclic because a
// gene's regulators always have smaller indices (genes are "born" in
// index order).
func buildTopology(cfg GenConfig, rng *perm.RNG) [][]int {
	n := cfg.Genes
	truth := make([][]int, n)
	if n == 1 {
		return truth
	}
	switch cfg.Topology {
	case ScaleFree:
		// Preferential attachment on the undirected degree: each new
		// gene g chooses up to AvgRegulators regulators among 0..g-1
		// with probability proportional to degree+1.
		degree := make([]int, n)
		for g := 1; g < n; g++ {
			if rng.Float64() < cfg.RootFraction {
				continue // independent root gene
			}
			k := cfg.AvgRegulators
			if k > g {
				k = g
			}
			chosen := map[int]bool{}
			// Weighted sampling without replacement (small k: loop).
			for len(chosen) < k {
				total := 0
				for c := 0; c < g; c++ {
					if !chosen[c] {
						total += degree[c] + 1
					}
				}
				pick := rng.Intn(total)
				for c := 0; c < g; c++ {
					if chosen[c] {
						continue
					}
					pick -= degree[c] + 1
					if pick < 0 {
						chosen[c] = true
						break
					}
				}
			}
			for c := range chosen {
				truth[g] = append(truth[g], c)
				degree[c]++
				degree[g]++
			}
			sort.Ints(truth[g])
		}
	case ErdosRenyi:
		for g := 1; g < n; g++ {
			if rng.Float64() < cfg.RootFraction {
				continue
			}
			k := cfg.AvgRegulators
			if k > g {
				k = g
			}
			chosen := map[int]bool{}
			for len(chosen) < k {
				chosen[rng.Intn(g)] = true
			}
			for c := range chosen {
				truth[g] = append(truth[g], c)
			}
			sort.Ints(truth[g])
		}
	default:
		panic(fmt.Sprintf("expr: unknown topology %d", cfg.Topology))
	}
	return truth
}

// sigmoid is the regulation response function.
func sigmoid(x float64) float64 { return 1 / (1 + math.Exp(-x)) }

// simulate fills d.Expr: for each experiment, roots get random inputs
// and downstream genes respond through signed sigmoidal regulation, with
// additive Gaussian noise.
func simulate(d *Dataset, cfg GenConfig, rng *perm.RNG) {
	n, m := d.N(), d.M()
	// Fixed signed regulation strengths per edge.
	strength := make([][]float64, n)
	for g := 0; g < n; g++ {
		strength[g] = make([]float64, len(d.Truth[g]))
		for e := range strength[g] {
			s := 2 + 2*rng.Float64() // |strength| in [2,4): strong coupling
			if rng.Intn(2) == 0 {
				s = -s
			}
			strength[g][e] = s
		}
	}
	if cfg.TimeSeries {
		simulateTimeSeries(d, cfg, rng)
		return
	}
	level := make([]float64, n)
	for exp := 0; exp < m; exp++ {
		knockout := -1
		if rng.Float64() < cfg.KnockoutFraction {
			knockout = rng.Intn(n)
		}
		for g := 0; g < n; g++ {
			if g == knockout {
				// Knocked-out gene: transcript absent regardless of
				// regulators; downstream genes see the zero level.
				level[g] = 0
				d.Expr.Set(g, exp, float32(cfg.Noise*rng.NormFloat64()))
				continue
			}
			if len(d.Truth[g]) == 0 {
				// Root gene: independent condition-driven level.
				level[g] = rng.Float64()
			} else {
				var in float64
				for e, r := range d.Truth[g] {
					in += strength[g][e] * (level[r] - 0.5)
				}
				// Intrinsic (process) noise propagates downstream,
				// attenuating indirect correlations relative to direct
				// regulation — without it every path through a hub
				// carries as much information as a direct edge.
				level[g] = sigmoid(in) + 0.5*cfg.Noise*rng.NormFloat64()
			}
			v := level[g] + cfg.Noise*rng.NormFloat64()
			d.Expr.Set(g, exp, float32(v))
		}
	}
}

// Subset returns a new dataset keeping only the first n genes (a
// common way to scale whole-genome inputs down for calibration runs).
// Ground-truth regulators always have smaller indices than their
// targets, so truncation preserves a valid truth. It panics when n is
// out of range.
func (d *Dataset) Subset(n int) *Dataset {
	if n < 1 || n > d.N() {
		panic(fmt.Sprintf("expr: subset size %d out of [1,%d]", n, d.N()))
	}
	rows := make([]int, n)
	for i := range rows {
		rows[i] = i
	}
	truth := make([][]int, n)
	for g := 0; g < n; g++ {
		truth[g] = append([]int(nil), d.Truth[g]...)
	}
	return &Dataset{
		Genes: append([]string(nil), d.Genes[:n]...),
		Expr:  d.Expr.SelectRows(rows),
		Truth: truth,
	}
}

// MissingCount returns the number of NaN entries in the expression
// matrix.
func (d *Dataset) MissingCount() int {
	count := 0
	for g := 0; g < d.N(); g++ {
		for _, v := range d.Expr.Row(g) {
			if math.IsNaN(float64(v)) {
				count++
			}
		}
	}
	return count
}

// ImputeRowMean replaces every NaN with its gene's mean over the
// observed values (0.5 for genes with no observations at all, the
// midpoint of the normalized range) and returns the number of values
// imputed. The MI pipeline requires a complete matrix; row-mean
// imputation is the standard minimal treatment for sparse microarray
// missingness and is rank-neutral for the affected gene.
func (d *Dataset) ImputeRowMean() int {
	imputed := 0
	for g := 0; g < d.N(); g++ {
		imputed += ImputeRowMeanValues(d.Expr.Row(g))
	}
	return imputed
}

// ImputeRowMeanValues is the slice-level imputation behind
// ImputeRowMean: imputation only ever looks at one gene's row, so the
// streaming out-of-core ingest can impute each row as it is parsed —
// before the full matrix would exist — and produce exactly the values
// the resident path does.
func ImputeRowMeanValues(row []float32) int {
	var sum float64
	observed := 0
	for _, v := range row {
		if !math.IsNaN(float64(v)) {
			sum += float64(v)
			observed++
		}
	}
	if observed == len(row) {
		return 0
	}
	fill := float32(0.5)
	if observed > 0 {
		fill = float32(sum / float64(observed))
	}
	imputed := 0
	for i, v := range row {
		if math.IsNaN(float64(v)) {
			row[i] = fill
			imputed++
		}
	}
	return imputed
}

// simulateTimeSeries fills d.Expr with one trajectory: gene g at time
// t responds to its regulators at t−1 through the same signed sigmoid
// regulation as the steady-state mode, so the causal direction is
// encoded as a one-step lag.
func simulateTimeSeries(d *Dataset, cfg GenConfig, rng *perm.RNG) {
	n, m := d.N(), d.M()
	strength := make([][]float64, n)
	for g := 0; g < n; g++ {
		strength[g] = make([]float64, len(d.Truth[g]))
		for e := range strength[g] {
			s := 2 + 2*rng.Float64()
			if rng.Intn(2) == 0 {
				s = -s
			}
			strength[g][e] = s
		}
	}
	prev := make([]float64, n)
	cur := make([]float64, n)
	for g := range prev {
		prev[g] = rng.Float64()
	}
	for t := 0; t < m; t++ {
		for g := 0; g < n; g++ {
			if len(d.Truth[g]) == 0 {
				// Root: mean-reverting walk so the trajectory keeps
				// exploring the dynamic range.
				cur[g] = prev[g] + 0.3*(0.5-prev[g]) + 0.25*rng.NormFloat64()
				if cur[g] < 0 {
					cur[g] = 0
				}
				if cur[g] > 1 {
					cur[g] = 1
				}
			} else {
				var in float64
				for e, r := range d.Truth[g] {
					in += strength[g][e] * (prev[r] - 0.5)
				}
				cur[g] = sigmoid(in) + 0.5*cfg.Noise*rng.NormFloat64()
			}
			d.Expr.Set(g, t, float32(cur[g]+cfg.Noise*rng.NormFloat64()))
		}
		prev, cur = cur, prev
	}
}

// WriteTSV writes the dataset: a header line "gene\tE0\tE1..." then one
// line per gene.
func (d *Dataset) WriteTSV(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString("gene"); err != nil {
		return err
	}
	for e := 0; e < d.M(); e++ {
		fmt.Fprintf(bw, "\tE%d", e)
	}
	if err := bw.WriteByte('\n'); err != nil {
		return err
	}
	for g := 0; g < d.N(); g++ {
		if _, err := bw.WriteString(d.Genes[g]); err != nil {
			return err
		}
		row := d.Expr.Row(g)
		for _, v := range row {
			fmt.Fprintf(bw, "\t%g", v)
		}
		if err := bw.WriteByte('\n'); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadTSV parses a dataset written by WriteTSV (or any compatible
// header+rows expression TSV). Ground truth is not represented in the
// format, so Truth is empty.
func ReadTSV(r io.Reader) (*Dataset, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<26)
	if !sc.Scan() {
		if err := sc.Err(); err != nil {
			return nil, err
		}
		return nil, fmt.Errorf("expr: empty input")
	}
	header := strings.Split(sc.Text(), "\t")
	if len(header) < 2 {
		return nil, fmt.Errorf("expr: header has %d fields, want >= 2", len(header))
	}
	m := len(header) - 1
	var genes []string
	var rows [][]float32
	line := 1
	for sc.Scan() {
		line++
		fields := strings.Split(sc.Text(), "\t")
		if len(fields) == 1 && fields[0] == "" {
			continue // trailing blank line
		}
		if len(fields) != m+1 {
			return nil, fmt.Errorf("expr: line %d has %d fields, want %d", line, len(fields), m+1)
		}
		row := make([]float32, m)
		for i, f := range fields[1:] {
			// Microarray exports mark missing measurements as NA (or
			// leave the field empty); represent them as NaN and let the
			// caller impute.
			if f == "" || f == "NA" || f == "na" || f == "N/A" {
				row[i] = float32(math.NaN())
				continue
			}
			v, err := strconv.ParseFloat(f, 32)
			if err != nil {
				return nil, fmt.Errorf("expr: line %d field %d: %w", line, i+2, err)
			}
			row[i] = float32(v)
		}
		genes = append(genes, fields[0])
		rows = append(rows, row)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(rows) == 0 {
		return nil, fmt.Errorf("expr: no gene rows")
	}
	return &Dataset{Genes: genes, Expr: mat.FromRows(rows), Truth: make([][]int, len(rows))}, nil
}
