package expr

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"

	"repro/internal/mat"
)

// RowSink receives one parsed gene row during streaming ingest. The row
// slice is scratch owned by the parser and reused for the next row; a
// sink that retains the values must copy them. Returning an error
// aborts the parse with that error.
//
// This is the hook the out-of-core path plugs a spill store into: rows
// flow parser → sink → disk-backed panel store without the full
// expression matrix ever being resident.
type RowSink func(gene string, row []float32) error

// StreamTSVRows parses the header+rows expression TSV exactly like
// StreamTSV but hands each row to sink instead of accumulating a
// matrix. It returns the gene names (one per accepted row) and the
// column count fixed by the header. Accept/reject behavior matches
// ReadTSV/StreamTSV: NA/empty fields become NaN, blank lines are
// skipped, ragged rows are errors.
func StreamTSVRows(r io.Reader, sink RowSink) (genes []string, cols int, err error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<26)
	if !sc.Scan() {
		if err := sc.Err(); err != nil {
			return nil, 0, err
		}
		return nil, 0, fmt.Errorf("expr: empty input")
	}
	header := strings.Split(sc.Text(), "\t")
	if len(header) < 2 {
		return nil, 0, fmt.Errorf("expr: header has %d fields, want >= 2", len(header))
	}
	m := len(header) - 1
	rowBuf := make([]float32, m)
	line := 1
	for sc.Scan() {
		line++
		lb := sc.Bytes()
		if len(lb) == 0 {
			continue // trailing blank line
		}
		// One counting pass pins the field count before any parsing, so
		// a ragged row errors with the same shape check as ReadTSV.
		if fields := bytes.Count(lb, []byte{'\t'}) + 1; fields != m+1 {
			return nil, 0, fmt.Errorf("expr: line %d has %d fields, want %d", line, fields, m+1)
		}
		// Gene name: first field.
		cut := bytes.IndexByte(lb, '\t')
		gene := string(lb[:cut])
		rest := lb[cut+1:]
		for i := 0; i < m; i++ {
			var f []byte
			if idx := bytes.IndexByte(rest, '\t'); idx >= 0 {
				f, rest = rest[:idx], rest[idx+1:]
			} else {
				f = rest
			}
			// Microarray exports mark missing measurements as NA (or
			// leave the field empty); represent them as NaN and let the
			// caller impute.
			if len(f) == 0 || string(f) == "NA" || string(f) == "na" || string(f) == "N/A" {
				rowBuf[i] = float32(math.NaN())
				continue
			}
			v, err := strconv.ParseFloat(string(f), 32)
			if err != nil {
				return nil, 0, fmt.Errorf("expr: line %d field %d: %w", line, i+2, err)
			}
			rowBuf[i] = float32(v)
		}
		if err := sink(gene, rowBuf); err != nil {
			return nil, 0, err
		}
		genes = append(genes, gene)
	}
	if err := sc.Err(); err != nil {
		return nil, 0, err
	}
	if len(genes) == 0 {
		return nil, 0, fmt.Errorf("expr: no gene rows")
	}
	return genes, m, nil
}

// StreamTSV parses the same header+rows expression TSV as ReadTSV, but
// streams rows straight into one contiguous, geometrically grown
// float32 buffer (mat.Matrix32) instead of staging a [][]float32 and
// copying it into a matrix afterwards. At whole-genome scale the
// difference matters: ReadTSV's staging holds two copies of the matrix
// plus one slice header and allocation per gene at peak; StreamTSV
// holds the matrix once plus grow slack during ingest — and the slack
// is released by a final Shrink, so the returned Dataset holds exactly
// rows·cols floats plus the one shared row buffer. Field splitting
// walks the tab positions in place — no strings.Split allocation per
// line.
//
// Accept/reject behavior and the resulting Dataset match ReadTSV
// exactly (the fuzz corpus pins the parity), including NA/empty-field
// NaN handling and blank-line skipping.
func StreamTSV(r io.Reader) (*Dataset, error) {
	var mx *mat.Matrix32
	genes, _, err := StreamTSVRows(r, func(gene string, row []float32) error {
		if mx == nil {
			mx = mat.NewMatrix32Hint(len(row), 256)
		}
		return mx.AppendRow(row)
	})
	if err != nil {
		return nil, err
	}
	mx.Shrink()
	return &Dataset{Genes: genes, Expr: mx.AsDense(), Truth: make([][]int, mx.Rows())}, nil
}
