package expr

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

// FuzzReadTSV asserts the expression parser never panics and that any
// successfully parsed dataset survives a write/read round trip.
func FuzzReadTSV(f *testing.F) {
	f.Add("gene\tE0\tE1\nG0\t0.5\t0.25\n")
	f.Add("gene\tE0\nG0\t1e-3\nG1\t-4.25\n")
	f.Add("")
	f.Add("gene\n")
	f.Add("gene\tE0\nG0\tnot-a-number\n")
	f.Add("gene\tE0\tE1\nG0\t1\n")
	f.Add("gene\tE0\nG0\tNaN\n")
	f.Add("gene\tE0\nG0\t+Inf\n")
	f.Add("\x00\t\x01\n\xff\t2\n")
	f.Fuzz(func(t *testing.T, input string) {
		d, err := ReadTSV(strings.NewReader(input))
		if err != nil {
			return // rejecting malformed input is fine; panicking is not
		}
		if d.N() == 0 || d.M() == 0 {
			t.Fatalf("accepted dataset with empty dimension %dx%d", d.N(), d.M())
		}
		// Round trip: parse(write(parse(x))) must equal parse(x) when
		// values are finite (non-finite values do not round-trip through
		// %g in a comparable way).
		if !d.Expr.IsFinite() {
			return
		}
		var buf bytes.Buffer
		if err := d.WriteTSV(&buf); err != nil {
			t.Fatalf("WriteTSV of parsed dataset failed: %v", err)
		}
		back, err := ReadTSV(&buf)
		if err != nil {
			t.Fatalf("reparse failed: %v", err)
		}
		if back.N() != d.N() || back.M() != d.M() {
			t.Fatalf("round-trip shape %dx%d != %dx%d", back.N(), back.M(), d.N(), d.M())
		}
		if !back.Expr.Equal(d.Expr, 1e-6) {
			t.Fatal("round-trip values differ")
		}
	})
}

// FuzzStreamTSV pins the streaming loader to the staged one: for any
// input, StreamTSV and ReadTSV must agree on accept/reject, and on
// accept must produce identical datasets (gene names, shape, values —
// NaN matching NaN, since NA fields parse to NaN).
func FuzzStreamTSV(f *testing.F) {
	f.Add("gene\tE0\tE1\nG0\t0.5\t0.25\n")
	f.Add("gene\tE0\nG0\t1e-3\nG1\t-4.25\n")
	f.Add("gene\tE0\tE1\nG0\tNA\t\nG1\tna\tN/A\n")
	f.Add("gene\tE0\nG0\t1\n\nG1\t2\n")
	f.Add("")
	// Malformed header: too few fields to carry any experiment column.
	f.Add("gene\n")
	f.Add("just-one-field-no-tabs")
	// Truncated rows: fewer fields than the header promises, including a
	// final line cut mid-row with no trailing newline.
	f.Add("gene\tE0\tE1\nG0\t1\n")
	f.Add("gene\tE0\tE1\nG0\t0.5\t0.25\nG1\t0.1")
	f.Add("gene\tE0\tE1\nG0\t0.5\t0.25\nG1\t0.1\t")
	f.Add("gene\tE0\nG0\tnot-a-number\n")
	f.Add("gene\tE0\nG0\t+Inf\n")
	f.Add("\x00\t\x01\n\xff\t2\n")
	f.Fuzz(func(t *testing.T, input string) {
		want, wantErr := ReadTSV(strings.NewReader(input))
		got, gotErr := StreamTSV(strings.NewReader(input))
		if (wantErr == nil) != (gotErr == nil) {
			t.Fatalf("accept/reject mismatch: ReadTSV err=%v, StreamTSV err=%v", wantErr, gotErr)
		}
		if wantErr != nil {
			return
		}
		if got.N() != want.N() || got.M() != want.M() {
			t.Fatalf("shape %dx%d != %dx%d", got.N(), got.M(), want.N(), want.M())
		}
		for i, g := range want.Genes {
			if got.Genes[i] != g {
				t.Fatalf("gene %d: %q != %q", i, got.Genes[i], g)
			}
		}
		for i := 0; i < want.N(); i++ {
			wr, gr := want.Expr.Row(i), got.Expr.Row(i)
			for j := range wr {
				w, g := wr[j], gr[j]
				wNaN, gNaN := math.IsNaN(float64(w)), math.IsNaN(float64(g))
				if wNaN != gNaN || (!wNaN && w != g) {
					t.Fatalf("value (%d,%d): %v != %v", i, j, g, w)
				}
			}
		}
	})
}
