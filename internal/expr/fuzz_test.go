package expr

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadTSV asserts the expression parser never panics and that any
// successfully parsed dataset survives a write/read round trip.
func FuzzReadTSV(f *testing.F) {
	f.Add("gene\tE0\tE1\nG0\t0.5\t0.25\n")
	f.Add("gene\tE0\nG0\t1e-3\nG1\t-4.25\n")
	f.Add("")
	f.Add("gene\n")
	f.Add("gene\tE0\nG0\tnot-a-number\n")
	f.Add("gene\tE0\tE1\nG0\t1\n")
	f.Add("gene\tE0\nG0\tNaN\n")
	f.Add("gene\tE0\nG0\t+Inf\n")
	f.Add("\x00\t\x01\n\xff\t2\n")
	f.Fuzz(func(t *testing.T, input string) {
		d, err := ReadTSV(strings.NewReader(input))
		if err != nil {
			return // rejecting malformed input is fine; panicking is not
		}
		if d.N() == 0 || d.M() == 0 {
			t.Fatalf("accepted dataset with empty dimension %dx%d", d.N(), d.M())
		}
		// Round trip: parse(write(parse(x))) must equal parse(x) when
		// values are finite (non-finite values do not round-trip through
		// %g in a comparable way).
		if !d.Expr.IsFinite() {
			return
		}
		var buf bytes.Buffer
		if err := d.WriteTSV(&buf); err != nil {
			t.Fatalf("WriteTSV of parsed dataset failed: %v", err)
		}
		back, err := ReadTSV(&buf)
		if err != nil {
			t.Fatalf("reparse failed: %v", err)
		}
		if back.N() != d.N() || back.M() != d.M() {
			t.Fatalf("round-trip shape %dx%d != %dx%d", back.N(), back.M(), d.N(), d.M())
		}
		if !back.Expr.Equal(d.Expr, 1e-6) {
			t.Fatal("round-trip values differ")
		}
	})
}
