package expr

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

// TestStreamTSVMatchesReadTSV round-trips a generated dataset through
// WriteTSV and checks the streaming loader reproduces exactly what the
// staged loader parses.
func TestStreamTSVMatchesReadTSV(t *testing.T) {
	d := MustGenerate(GenConfig{Genes: 40, Experiments: 23, Seed: 7})
	var buf bytes.Buffer
	if err := d.WriteTSV(&buf); err != nil {
		t.Fatal(err)
	}
	text := buf.String()

	want, err := ReadTSV(strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	got, err := StreamTSV(strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	if got.N() != want.N() || got.M() != want.M() {
		t.Fatalf("shape %dx%d, want %dx%d", got.N(), got.M(), want.N(), want.M())
	}
	for i, g := range want.Genes {
		if got.Genes[i] != g {
			t.Fatalf("gene %d: %q != %q", i, got.Genes[i], g)
		}
	}
	if !got.Expr.Equal(want.Expr, 0) {
		t.Fatal("streamed matrix differs from staged matrix")
	}
}

func TestStreamTSVErrors(t *testing.T) {
	cases := map[string]string{
		"empty input":      "",
		"header too short": "gene\n",
		"truncated row":    "gene\tE0\tE1\nG0\t1\n",
		"extra field":      "gene\tE0\nG0\t1\t2\n",
		"bad number":       "gene\tE0\nG0\tnot-a-number\n",
		"no gene rows":     "gene\tE0\n",
	}
	for name, input := range cases {
		if _, err := StreamTSV(strings.NewReader(input)); err == nil {
			t.Errorf("%s: accepted %q", name, input)
		}
	}
}

func TestStreamTSVMissingValues(t *testing.T) {
	d, err := StreamTSV(strings.NewReader("gene\tE0\tE1\tE2\tE3\nG0\tNA\t\tna\tN/A\nG1\t1\t2\t3\t4\n\n"))
	if err != nil {
		t.Fatal(err)
	}
	if d.N() != 2 || d.M() != 4 {
		t.Fatalf("shape %dx%d, want 2x4", d.N(), d.M())
	}
	for j := 0; j < 4; j++ {
		if !math.IsNaN(float64(d.Expr.At(0, j))) {
			t.Fatalf("missing value (0,%d) parsed as %v, want NaN", j, d.Expr.At(0, j))
		}
	}
	if d.Expr.At(1, 3) != 4 {
		t.Fatalf("value (1,3) = %v, want 4", d.Expr.At(1, 3))
	}
	if len(d.Truth) != 2 {
		t.Fatalf("Truth len %d, want 2", len(d.Truth))
	}
}

// TestStreamTSVPeakIngestBytes pins the streaming loader's memory
// contract: after ingest the returned matrix retains exactly rows*cols
// floats — the geometric append slack (up to ~2x on a whole-genome
// load) is released by the final Shrink. 600 genes outgrow the 256-row
// capacity hint twice, so without the Shrink the backing array would
// hold 1024 rows' worth of floats.
func TestStreamTSVPeakIngestBytes(t *testing.T) {
	const rows, cols = 600, 9
	d := MustGenerate(GenConfig{Genes: rows, Experiments: cols, Seed: 11})
	var buf bytes.Buffer
	if err := d.WriteTSV(&buf); err != nil {
		t.Fatal(err)
	}
	ds, err := StreamTSV(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if ds.N() != rows || ds.M() != cols {
		t.Fatalf("shape %dx%d, want %dx%d", ds.N(), ds.M(), rows, cols)
	}
	if got := cap(ds.Expr.Data()); got != rows*cols {
		t.Fatalf("retained backing capacity %d floats (%d bytes), want exactly %d (%d bytes): ingest slack not released",
			got, got*4, rows*cols, rows*cols*4)
	}
	// And the shrunk matrix is still the same data the staged loader sees.
	want, err := ReadTSV(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if !ds.Expr.Equal(want.Expr, 0) {
		t.Fatal("shrunk streamed matrix differs from staged matrix")
	}
}
