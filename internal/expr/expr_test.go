package expr

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"repro/internal/stats"
)

func TestGenerateValidation(t *testing.T) {
	if _, err := Generate(GenConfig{Genes: 0, Experiments: 10}); err == nil {
		t.Fatal("zero genes should error")
	}
	if _, err := Generate(GenConfig{Genes: 10, Experiments: 0}); err == nil {
		t.Fatal("zero experiments should error")
	}
	if _, err := Generate(GenConfig{Genes: 10, Experiments: 10, AvgRegulators: -1}); err == nil {
		t.Fatal("negative regulators should error")
	}
	if _, err := Generate(GenConfig{Genes: 10, Experiments: 10, Noise: -0.5}); err == nil {
		t.Fatal("negative noise should error")
	}
}

func TestMustGeneratePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MustGenerate(GenConfig{Genes: -1, Experiments: 1})
}

func TestGenerateShapeAndDeterminism(t *testing.T) {
	cfg := GenConfig{Genes: 50, Experiments: 30, Seed: 5}
	a := MustGenerate(cfg)
	b := MustGenerate(cfg)
	if a.N() != 50 || a.M() != 30 {
		t.Fatalf("shape %dx%d", a.N(), a.M())
	}
	if len(a.Genes) != 50 || a.Genes[0] != "G00000" {
		t.Fatalf("gene names %v...", a.Genes[:2])
	}
	if !a.Expr.Equal(b.Expr, 0) {
		t.Fatal("same seed must generate identical data")
	}
	c := MustGenerate(GenConfig{Genes: 50, Experiments: 30, Seed: 6})
	if a.Expr.Equal(c.Expr, 0) {
		t.Fatal("different seeds should differ")
	}
	if !a.Expr.IsFinite() {
		t.Fatal("generated data must be finite")
	}
}

func TestTopologyAcyclicAndDegrees(t *testing.T) {
	for _, topo := range []Topology{ScaleFree, ErdosRenyi} {
		d := MustGenerate(GenConfig{Genes: 200, Experiments: 5, Topology: topo, AvgRegulators: 3, Seed: 7})
		edges := 0
		for g, regs := range d.Truth {
			seen := map[int]bool{}
			for _, r := range regs {
				if r >= g {
					t.Fatalf("topo %d: gene %d regulated by %d (not acyclic)", topo, g, r)
				}
				if seen[r] {
					t.Fatalf("topo %d: duplicate regulator %d of gene %d", topo, r, g)
				}
				seen[r] = true
				edges++
			}
			if g >= 3 && len(regs) != 0 && len(regs) != 3 {
				t.Fatalf("topo %d: gene %d has %d regulators, want 0 (root) or 3", topo, g, len(regs))
			}
		}
		if edges == 0 {
			t.Fatalf("topo %d: no edges", topo)
		}
	}
}

func TestScaleFreeIsSkewed(t *testing.T) {
	// Preferential attachment should concentrate out-degree: the top hub
	// in a scale-free graph should have far higher degree than in an ER
	// graph of identical size.
	degreeMax := func(topo Topology) int {
		d := MustGenerate(GenConfig{Genes: 400, Experiments: 2, Topology: topo, AvgRegulators: 2, Seed: 11})
		deg := make([]int, 400)
		for g, regs := range d.Truth {
			for _, r := range regs {
				deg[r]++
				deg[g]++
			}
		}
		max := 0
		for _, v := range deg {
			if v > max {
				max = v
			}
		}
		return max
	}
	sf, er := degreeMax(ScaleFree), degreeMax(ErdosRenyi)
	if sf <= er {
		t.Fatalf("scale-free hub degree %d should exceed ER %d", sf, er)
	}
}

func TestTrueEdgeSet(t *testing.T) {
	d := &Dataset{Truth: [][]int{nil, {0}, {0, 1}}}
	d.Expr = MustGenerate(GenConfig{Genes: 3, Experiments: 2, Seed: 1}).Expr
	set := d.TrueEdgeSet()
	if len(set) != 3 {
		t.Fatalf("edge set size %d, want 3", len(set))
	}
	n := int64(3)
	for _, key := range []int64{0*n + 1, 0*n + 2, 1*n + 2} {
		if !set[key] {
			t.Fatalf("missing edge key %d", key)
		}
	}
}

func TestRegulatedGenesCorrelateWithRegulators(t *testing.T) {
	d := MustGenerate(GenConfig{Genes: 30, Experiments: 500, AvgRegulators: 1, Noise: 0.05, Seed: 13})
	// A gene with exactly one regulator should show strong |corr| with
	// it; compare against the mean |corr| with non-regulators.
	var onReg, offReg []float64
	for g, regs := range d.Truth {
		if len(regs) != 1 {
			continue
		}
		x := toF64(d.Expr.Row(g))
		for other := 0; other < d.N(); other++ {
			if other == g {
				continue
			}
			r := math.Abs(stats.Pearson(x, toF64(d.Expr.Row(other))))
			if other == regs[0] {
				onReg = append(onReg, r)
			} else {
				offReg = append(offReg, r)
			}
		}
	}
	if len(onReg) == 0 {
		t.Skip("no single-regulator genes in this draw")
	}
	if stats.Mean(onReg) <= stats.Mean(offReg)+0.1 {
		t.Fatalf("regulator corr %v not clearly above background %v",
			stats.Mean(onReg), stats.Mean(offReg))
	}
}

func toF64(x []float32) []float64 {
	o := make([]float64, len(x))
	for i, v := range x {
		o[i] = float64(v)
	}
	return o
}

func TestTSVRoundTrip(t *testing.T) {
	d := MustGenerate(GenConfig{Genes: 8, Experiments: 5, Seed: 3})
	var buf bytes.Buffer
	if err := d.WriteTSV(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadTSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.N() != 8 || got.M() != 5 {
		t.Fatalf("round-trip shape %dx%d", got.N(), got.M())
	}
	for g := 0; g < 8; g++ {
		if got.Genes[g] != d.Genes[g] {
			t.Fatalf("gene name %q != %q", got.Genes[g], d.Genes[g])
		}
	}
	if !got.Expr.Equal(d.Expr, 1e-6) {
		t.Fatal("round-trip values differ")
	}
}

func TestReadTSVErrors(t *testing.T) {
	cases := map[string]string{
		"empty":        "",
		"header-only":  "gene\tE0\n",
		"short-header": "gene\n",
		"ragged":       "gene\tE0\tE1\nG0\t1.0\n",
		"bad-number":   "gene\tE0\nG0\tnotanumber\n",
	}
	for name, in := range cases {
		if _, err := ReadTSV(strings.NewReader(in)); err == nil {
			t.Fatalf("%s: expected error", name)
		}
	}
}

func TestReadTSVTrailingBlankLine(t *testing.T) {
	in := "gene\tE0\tE1\nG0\t0.5\t0.25\n\n"
	d, err := ReadTSV(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if d.N() != 1 || d.Expr.At(0, 1) != 0.25 {
		t.Fatalf("parsed %dx%d At(0,1)=%v", d.N(), d.M(), d.Expr.At(0, 1))
	}
}

func TestSingleGeneDataset(t *testing.T) {
	d := MustGenerate(GenConfig{Genes: 1, Experiments: 10, Seed: 1})
	if len(d.Truth[0]) != 0 {
		t.Fatal("single gene cannot have regulators")
	}
	if len(d.TrueEdgeSet()) != 0 {
		t.Fatal("single gene edge set must be empty")
	}
}

func BenchmarkGenerate1000x337(b *testing.B) {
	cfg := GenConfig{Genes: 1000, Experiments: 337, Seed: 1}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		MustGenerate(cfg)
	}
}

func TestKnockoutFractionValidation(t *testing.T) {
	if _, err := Generate(GenConfig{Genes: 5, Experiments: 5, KnockoutFraction: 1.5}); err == nil {
		t.Fatal("KnockoutFraction > 1 should error")
	}
	if _, err := Generate(GenConfig{Genes: 5, Experiments: 5, KnockoutFraction: -0.1}); err == nil {
		t.Fatal("negative KnockoutFraction should error")
	}
}

func TestKnockoutsSuppressExpression(t *testing.T) {
	// With every experiment a knockout and no noise, each experiment
	// must contain exactly one near-zero gene among the non-roots.
	d := MustGenerate(GenConfig{
		Genes: 20, Experiments: 200, KnockoutFraction: 1,
		Noise: 0.001, Seed: 21,
	})
	zeroish := 0
	for e := 0; e < d.M(); e++ {
		for g := 0; g < d.N(); g++ {
			if v := d.Expr.At(g, e); v > -0.01 && v < 0.01 {
				zeroish++
			}
		}
	}
	// At least one knockout per experiment (roots sit ~uniform in (0,1),
	// regulated genes near sigmoid outputs; exact zeros come from
	// knockouts). Sigmoid outputs can also be near zero under strong
	// repression, so only lower-bound the count.
	if zeroish < d.M() {
		t.Fatalf("found %d near-zero values, want >= %d (one per experiment)", zeroish, d.M())
	}
	// Determinism with knockouts.
	d2 := MustGenerate(GenConfig{
		Genes: 20, Experiments: 200, KnockoutFraction: 1,
		Noise: 0.001, Seed: 21,
	})
	if !d.Expr.Equal(d2.Expr, 0) {
		t.Fatal("knockout mode must stay deterministic")
	}
}

func TestKnockoutZeroFractionMatchesObservational(t *testing.T) {
	a := MustGenerate(GenConfig{Genes: 10, Experiments: 30, Seed: 5})
	b := MustGenerate(GenConfig{Genes: 10, Experiments: 30, Seed: 5, KnockoutFraction: 0})
	if !a.Expr.Equal(b.Expr, 0) {
		t.Fatal("zero knockout fraction must not change the stream")
	}
}

func TestReadTSVMissingValues(t *testing.T) {
	in := "gene\tE0\tE1\tE2\nG0\t1\tNA\t3\nG1\t\t2\tN/A\n"
	d, err := ReadTSV(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if got := d.MissingCount(); got != 3 {
		t.Fatalf("MissingCount = %d, want 3", got)
	}
	if !math.IsNaN(float64(d.Expr.At(0, 1))) {
		t.Fatal("NA should parse to NaN")
	}
	n := d.ImputeRowMean()
	if n != 3 {
		t.Fatalf("imputed %d, want 3", n)
	}
	// G0 observed mean = 2.
	if d.Expr.At(0, 1) != 2 {
		t.Fatalf("imputed value = %v, want 2", d.Expr.At(0, 1))
	}
	if d.MissingCount() != 0 || !d.Expr.IsFinite() {
		t.Fatal("matrix should be complete after imputation")
	}
}

func TestImputeAllMissingRow(t *testing.T) {
	in := "gene\tE0\tE1\nG0\tNA\tNA\n"
	d, err := ReadTSV(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	d.ImputeRowMean()
	if d.Expr.At(0, 0) != 0.5 || d.Expr.At(0, 1) != 0.5 {
		t.Fatalf("all-missing row should fill 0.5, got %v/%v", d.Expr.At(0, 0), d.Expr.At(0, 1))
	}
}

func TestImputeNoMissingIsNoop(t *testing.T) {
	d := MustGenerate(GenConfig{Genes: 5, Experiments: 10, Seed: 9})
	before := d.Expr.Clone()
	if n := d.ImputeRowMean(); n != 0 {
		t.Fatalf("imputed %d on complete matrix", n)
	}
	if !d.Expr.Equal(before, 0) {
		t.Fatal("imputation mutated complete matrix")
	}
}

func TestSubset(t *testing.T) {
	d := MustGenerate(GenConfig{Genes: 20, Experiments: 10, Seed: 30})
	sub := d.Subset(8)
	if sub.N() != 8 || sub.M() != 10 {
		t.Fatalf("subset shape %dx%d", sub.N(), sub.M())
	}
	for g := 0; g < 8; g++ {
		if sub.Genes[g] != d.Genes[g] {
			t.Fatalf("gene %d name mismatch", g)
		}
		for _, r := range sub.Truth[g] {
			if r >= 8 {
				t.Fatalf("subset truth references gene %d >= 8", r)
			}
		}
		for s := 0; s < 10; s++ {
			if sub.Expr.At(g, s) != d.Expr.At(g, s) {
				t.Fatalf("value mismatch at (%d,%d)", g, s)
			}
		}
	}
	// Independent storage.
	sub.Expr.Set(0, 0, 99)
	if d.Expr.At(0, 0) == 99 {
		t.Fatal("Subset must copy")
	}
	for _, bad := range []int{0, 21, -1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("Subset(%d) should panic", bad)
				}
			}()
			d.Subset(bad)
		}()
	}
}
