package trace

import (
	"bytes"
	"encoding/json"
	"sync"
	"testing"
	"time"
)

func TestRecordAndEventsSorted(t *testing.T) {
	r := NewRecorder()
	now := time.Now()
	r.Record(1, "b", now.Add(10*time.Millisecond), 5*time.Millisecond)
	r.Record(0, "a", now, 5*time.Millisecond)
	ev := r.Events()
	if len(ev) != 2 || r.Len() != 2 {
		t.Fatalf("events = %d", len(ev))
	}
	if ev[0].Name != "a" || ev[1].Name != "b" {
		t.Fatalf("events not sorted by start: %v", ev)
	}
}

func TestRecordNegativeDurationPanics(t *testing.T) {
	r := NewRecorder()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	r.Record(0, "x", time.Now(), -time.Second)
}

func TestSpan(t *testing.T) {
	r := NewRecorder()
	done := r.Span(3, "tile")
	time.Sleep(2 * time.Millisecond)
	done()
	ev := r.Events()
	if len(ev) != 1 || ev[0].Worker != 3 || ev[0].Name != "tile" {
		t.Fatalf("span event = %+v", ev)
	}
	if ev[0].Dur < time.Millisecond {
		t.Fatalf("span too short: %v", ev[0].Dur)
	}
}

func TestConcurrentRecording(t *testing.T) {
	r := NewRecorder()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				r.Record(w, "t", time.Now(), time.Microsecond)
			}
		}(w)
	}
	wg.Wait()
	if r.Len() != 800 {
		t.Fatalf("recorded %d, want 800", r.Len())
	}
}

func TestWriteChromeTrace(t *testing.T) {
	r := NewRecorder()
	now := time.Now()
	r.Record(0, "tile-0", now, time.Millisecond)
	r.Record(1, "tile-1", now.Add(time.Millisecond), 2*time.Millisecond)
	var buf bytes.Buffer
	if err := r.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var out []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if len(out) != 2 {
		t.Fatalf("chrome events = %d", len(out))
	}
	if out[0]["ph"] != "X" || out[0]["name"] != "tile-0" {
		t.Fatalf("event 0 = %v", out[0])
	}
	if dur, ok := out[1]["dur"].(float64); !ok || dur < 1900 || dur > 2200 {
		t.Fatalf("dur = %v µs, want ~2000", out[1]["dur"])
	}
}

func TestUtilization(t *testing.T) {
	r := NewRecorder()
	now := time.Now()
	// Worker 0 busy the whole 10ms span, worker 1 half, worker 2 idle.
	r.Record(0, "a", now, 10*time.Millisecond)
	r.Record(1, "b", now, 5*time.Millisecond)
	u := r.Utilization(3)
	if len(u) != 3 {
		t.Fatalf("len = %d", len(u))
	}
	if u[0] < 0.99 || u[0] > 1 {
		t.Fatalf("u[0] = %v, want ~1", u[0])
	}
	if u[1] < 0.45 || u[1] > 0.55 {
		t.Fatalf("u[1] = %v, want ~0.5", u[1])
	}
	if u[2] != 0 {
		t.Fatalf("u[2] = %v, want 0", u[2])
	}
}

func TestUtilizationEmpty(t *testing.T) {
	if NewRecorder().Utilization(4) != nil {
		t.Fatal("empty recorder should return nil")
	}
}

func TestUtilizationZeroSpan(t *testing.T) {
	r := NewRecorder()
	now := time.Now()
	r.Record(0, "instant", now, 0)
	u := r.Utilization(1)
	if len(u) != 1 || u[0] != 0 {
		t.Fatalf("zero-span utilization = %v", u)
	}
}

func TestCounterTrack(t *testing.T) {
	r := NewRecorder()
	now := time.Now()
	r.Record(0, "tile-0", now, time.Millisecond)
	r.Counter(0, "perm_skipped", 12)
	r.Counter(1, "permcache_hits", 30)
	// Counter samples live on their own track.
	if r.Len() != 1 {
		t.Fatalf("Len counts counters: %d, want 1 span", r.Len())
	}
	cs := r.Counters()
	if len(cs) != 2 {
		t.Fatalf("counters = %d, want 2", len(cs))
	}
	if cs[0].Name != "perm_skipped" || cs[0].Value != 12 || cs[0].Worker != 0 {
		t.Fatalf("sample 0 = %+v", cs[0])
	}
	var buf bytes.Buffer
	if err := r.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var out []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if len(out) != 3 {
		t.Fatalf("chrome events = %d, want 3", len(out))
	}
	nCounter := 0
	for _, e := range out {
		if e["ph"] == "C" {
			nCounter++
			args, ok := e["args"].(map[string]any)
			if !ok {
				t.Fatalf("counter event without args: %v", e)
			}
			if _, ok := args["value"].(float64); !ok {
				t.Fatalf("counter args missing value: %v", e)
			}
		}
	}
	if nCounter != 2 {
		t.Fatalf("counter chrome events = %d, want 2", nCounter)
	}
}
