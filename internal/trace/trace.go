// Package trace records per-worker execution timelines and exports
// them in the Chrome trace-event format (load chrome://tracing or
// https://ui.perfetto.dev), the standard way to eyeball scheduling
// behaviour: tile boundaries, load imbalance, and the long
// permutation-test tiles dynamic scheduling exists to spread.
package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"
	"time"
)

// Event is one completed span on a worker's timeline.
type Event struct {
	Worker int
	Name   string
	Start  time.Duration // offset from the recorder's epoch
	Dur    time.Duration
}

// CounterSample is one point on a per-worker counter track (Chrome
// trace "C" events) — used for the scan's amortization counters
// (permutations skipped by early exit, permuted-row cache hits).
type CounterSample struct {
	Worker int
	Name   string
	At     time.Duration // offset from the recorder's epoch
	Value  float64
}

// Recorder accumulates events. It is safe for concurrent use.
type Recorder struct {
	mu       sync.Mutex
	epoch    time.Time
	events   []Event
	counters []CounterSample
}

// NewRecorder starts a recorder whose epoch is now.
func NewRecorder() *Recorder {
	return &Recorder{epoch: time.Now()}
}

// Record adds a completed span.
func (r *Recorder) Record(worker int, name string, start time.Time, dur time.Duration) {
	if dur < 0 {
		panic(fmt.Sprintf("trace: negative duration %v", dur))
	}
	r.mu.Lock()
	r.events = append(r.events, Event{
		Worker: worker,
		Name:   name,
		Start:  start.Sub(r.epoch),
		Dur:    dur,
	})
	r.mu.Unlock()
}

// Span starts a span and returns its closer; defer it (or call it) when
// the work finishes.
func (r *Recorder) Span(worker int, name string) func() {
	start := time.Now()
	return func() {
		r.Record(worker, name, start, time.Since(start))
	}
}

// Counter samples a monotonic (or free-form) per-worker counter at the
// current time. Counter samples live on a separate track and do not
// affect Len or Utilization.
func (r *Recorder) Counter(worker int, name string, value float64) {
	at := time.Since(r.epoch)
	r.mu.Lock()
	r.counters = append(r.counters, CounterSample{
		Worker: worker,
		Name:   name,
		At:     at,
		Value:  value,
	})
	r.mu.Unlock()
}

// Len returns the number of recorded span events (counter samples are
// not included).
func (r *Recorder) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.events)
}

// Counters returns a copy of the recorded counter samples sorted by
// sample time.
func (r *Recorder) Counters() []CounterSample {
	r.mu.Lock()
	out := append([]CounterSample(nil), r.counters...)
	r.mu.Unlock()
	sort.Slice(out, func(a, b int) bool { return out[a].At < out[b].At })
	return out
}

// Events returns a copy of the recorded events sorted by start time.
func (r *Recorder) Events() []Event {
	r.mu.Lock()
	out := append([]Event(nil), r.events...)
	r.mu.Unlock()
	sort.Slice(out, func(a, b int) bool { return out[a].Start < out[b].Start })
	return out
}

// chromeEvent is the trace-event JSON shape ("X" = complete event,
// "C" = counter sample; timestamps in microseconds).
type chromeEvent struct {
	Name string             `json:"name"`
	Ph   string             `json:"ph"`
	Ts   float64            `json:"ts"`
	Dur  float64            `json:"dur,omitempty"`
	Pid  int                `json:"pid"`
	Tid  int                `json:"tid"`
	Args map[string]float64 `json:"args,omitempty"`
}

// WriteChromeTrace emits the spans (as "X" complete events) and counter
// samples (as "C" counter events) as a Chrome trace-event JSON array.
func (r *Recorder) WriteChromeTrace(w io.Writer) error {
	events := r.Events()
	counters := r.Counters()
	out := make([]chromeEvent, 0, len(events)+len(counters))
	for _, e := range events {
		out = append(out, chromeEvent{
			Name: e.Name,
			Ph:   "X",
			Ts:   float64(e.Start.Nanoseconds()) / 1e3,
			Dur:  float64(e.Dur.Nanoseconds()) / 1e3,
			Pid:  1,
			Tid:  e.Worker,
		})
	}
	for _, c := range counters {
		out = append(out, chromeEvent{
			Name: c.Name,
			Ph:   "C",
			Ts:   float64(c.At.Nanoseconds()) / 1e3,
			Pid:  1,
			Tid:  c.Worker,
			Args: map[string]float64{"value": c.Value},
		})
	}
	enc := json.NewEncoder(w)
	return enc.Encode(out)
}

// Utilization returns each worker's busy fraction over the makespan
// (first start to last end across all workers). Workers with no events
// report 0. It returns nil when nothing was recorded.
func (r *Recorder) Utilization(workers int) []float64 {
	events := r.Events()
	if len(events) == 0 {
		return nil
	}
	first := events[0].Start
	last := first
	busy := make([]time.Duration, workers)
	for _, e := range events {
		if end := e.Start + e.Dur; end > last {
			last = end
		}
		if e.Worker >= 0 && e.Worker < workers {
			busy[e.Worker] += e.Dur
		}
	}
	span := last - first
	out := make([]float64, workers)
	if span <= 0 {
		return out
	}
	for w := range out {
		out[w] = float64(busy[w]) / float64(span)
		if out[w] > 1 {
			out[w] = 1 // overlapping spans on one worker clamp
		}
	}
	return out
}
