package tinge_test

import (
	"bytes"
	"math"
	"testing"

	"repro/tinge"
)

func TestQuickstartFlow(t *testing.T) {
	data := tinge.MustGenerate(tinge.GenConfig{
		Genes: 30, Experiments: 120, AvgRegulators: 1, Noise: 0.05, Seed: 1,
	})
	res, err := tinge.InferDataset(data, tinge.Config{
		Seed: 1, Permutations: 10, Workers: 2, DPI: true, DPITolerance: 0.1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Network.Len() == 0 {
		t.Fatal("no edges")
	}
	score := res.Network.ScoreAgainst(data.TrueEdgeSet())
	if score.TP == 0 {
		t.Fatal("no true positives on easy data")
	}
}

func TestMatrixFromRowsAndInfer(t *testing.T) {
	rows := make([][]float32, 5)
	for g := range rows {
		rows[g] = make([]float32, 20)
		for s := range rows[g] {
			rows[g][s] = float32((g*7 + s*3) % 13)
		}
	}
	m := tinge.MatrixFromRows(rows)
	res, err := tinge.Infer(m, tinge.Config{Seed: 2, Permutations: 5, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Network.N() != 5 {
		t.Fatalf("N = %d", res.Network.N())
	}
}

func TestEngineConstantsWired(t *testing.T) {
	data := tinge.MustGenerate(tinge.GenConfig{Genes: 12, Experiments: 40, Seed: 3})
	for _, eng := range []tinge.EngineKind{tinge.Host, tinge.Phi, tinge.Cluster, tinge.Hybrid} {
		cfg := tinge.Config{Engine: eng, Seed: 3, Permutations: 5, Workers: 2, Ranks: 2}
		res, err := tinge.InferDataset(data, cfg)
		if err != nil {
			t.Fatalf("%v: %v", eng, err)
		}
		if res.Network == nil {
			t.Fatalf("%v: nil network", eng)
		}
	}
}

func TestTSVRoundTripThroughPublicAPI(t *testing.T) {
	data := tinge.MustGenerate(tinge.GenConfig{Genes: 6, Experiments: 8, Seed: 4})
	var buf bytes.Buffer
	if err := data.WriteTSV(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := tinge.ReadExpressionTSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.N() != 6 || back.M() != 8 {
		t.Fatalf("shape %dx%d", back.N(), back.M())
	}

	net := tinge.NewNetwork(3)
	net.AddEdge(0, 2, 0.5)
	var nb bytes.Buffer
	if err := net.WriteTSV(&nb, nil); err != nil {
		t.Fatal(err)
	}
	nnet, err := tinge.ReadNetworkTSV(&nb, 3)
	if err != nil {
		t.Fatal(err)
	}
	if nnet.Len() != 1 {
		t.Fatalf("network round trip Len = %d", nnet.Len())
	}
}

func TestDeviceModels(t *testing.T) {
	p := tinge.XeonPhi5110P()
	x := tinge.XeonE5()
	if p.Cores != 60 || p.VectorLanes != 16 {
		t.Fatalf("phi model %+v", p)
	}
	if x.Cores != 16 || x.VectorLanes != 8 {
		t.Fatalf("xeon model %+v", x)
	}
}

func TestGaussianMI(t *testing.T) {
	if tinge.GaussianMI(0) != 0 {
		t.Fatal("MI(rho=0) != 0")
	}
	if math.Abs(tinge.GaussianMI(0.6)-0.3219) > 1e-3 {
		t.Fatalf("MI(0.6) = %v", tinge.GaussianMI(0.6))
	}
}

func TestPolicyConstantsDistinct(t *testing.T) {
	set := map[tinge.Policy]bool{
		tinge.StaticBlock: true, tinge.StaticCyclic: true,
		tinge.Dynamic: true, tinge.Stealing: true,
	}
	if len(set) != 4 {
		t.Fatal("policy constants collide")
	}
}
