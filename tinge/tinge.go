// Package tinge is the public API of this reproduction of
// "Parallel Mutual Information Based Construction of Whole-Genome
// Networks on the Intel Xeon Phi Coprocessor" (Misra, Pamnany, Aluru —
// IPDPS 2014).
//
// It infers gene regulatory networks from expression matrices using
// B-spline mutual-information estimation with permutation testing
// (the TINGe method), executed on one of four engines:
//
//   - Host: a goroutine pool over cache-sized pair tiles (the paper's
//     Xeon path);
//   - Phi: the same exact computation plus a simulated-time account on
//     a Xeon Phi coprocessor model, including PCIe offload (the paper's
//     coprocessor path — results exact, time modeled);
//   - Cluster: an MPI-style multi-rank execution (the original TINGe
//     cluster baseline);
//   - Hybrid: concurrent host + coprocessor execution with a
//     throughput-proportional work split.
//
// Quickstart:
//
//	data := tinge.MustGenerate(tinge.GenConfig{Genes: 500, Experiments: 300, Seed: 1})
//	res, err := tinge.InferDataset(data, tinge.Config{DPI: true, DPITolerance: 0.1})
//	...
//	score := res.Network.ScoreAgainst(data.TrueEdgeSet())
package tinge

import (
	"context"
	"io"

	"repro/internal/checkpoint"
	"repro/internal/core"
	"repro/internal/diskfault"
	"repro/internal/expr"
	"repro/internal/fleet"
	"repro/internal/grn"
	"repro/internal/mat"
	"repro/internal/mi"
	"repro/internal/mpi"
	"repro/internal/panelstore"
	"repro/internal/phi"
	"repro/internal/soft"
	"repro/internal/tile"
	"repro/internal/trace"
)

// Core pipeline types.
type (
	// Config parameterizes an inference run; see core.Config for field
	// documentation. The zero value gives the paper's defaults.
	Config = core.Config
	// Result is an inference outcome: network, threshold, timings, and
	// engine-specific accounts.
	Result = core.Result
	// EngineKind selects Host, Phi, or Cluster execution.
	EngineKind = core.EngineKind
	// KernelKind selects the MI kernel formulation.
	KernelKind = core.KernelKind
	// Precision selects the MI compute precision.
	Precision = core.Precision
	// EnsembleConfig turns a run into a bootstrap consensus workload:
	// B seeded sample subsets, one network each, folded into per-edge
	// support frequencies plus a consensus network at the cutoff.
	EnsembleConfig = core.EnsembleConfig
)

// Ensemble types.
type (
	// Ensemble aggregates bootstrap networks into per-edge support.
	Ensemble = grn.Ensemble
	// SupportEdge is one edge's support count and weight sum.
	SupportEdge = grn.SupportEdge
)

// Ensemble defaults (EnsembleConfig zero values resolve to these).
const (
	// DefaultSubsampleFrac is the fraction of experiments each
	// bootstrap samples.
	DefaultSubsampleFrac = core.DefaultSubsampleFrac
	// DefaultSupportCutoff is the consensus support frequency cutoff.
	DefaultSupportCutoff = core.DefaultSupportCutoff
)

// NewEnsemble creates an empty support aggregate over n genes
// (exposed for tools that fold externally computed bootstrap
// networks; fold in ascending bootstrap order for reproducible
// weight sums).
func NewEnsemble(n int) *Ensemble { return grn.NewEnsemble(n) }

// ReadSupportTSV parses a numeric support table written by
// Ensemble.WriteSupportTSV (or tinge -ensemble-out) over n genes.
func ReadSupportTSV(r io.Reader, n int) (*Ensemble, error) { return grn.ReadSupportTSV(r, n) }

// Fault-tolerance types (cluster engine). A FaultPlan assigned to
// Config.Fault injects deterministic rank kills, message delays, and
// drops for chaos testing; AbortError is what a failed world returns.
type (
	// FaultPlan is a deterministic chaos-injection plan.
	FaultPlan = mpi.FaultPlan
	// KillSpec picks the rank to kill and the trigger point.
	KillSpec = mpi.KillSpec
	// AbortError attributes a world failure to a rank and cause.
	AbortError = mpi.AbortError
)

// Durability types (disk persistence). A DiskFaultPlan's FS wrapper
// assigned to Config.FS injects deterministic disk faults — failed or
// torn writes, ENOSPC, seeded bit flips on read — into checkpoint and
// spill I/O for crash-consistency testing. All persisted formats are
// checksummed; a checkpoint that fails verification surfaces as a
// CheckpointCorruptError from the checkpoint layer and as a counted
// fresh start (Result.CheckpointRecoveries) from the engines.
type (
	// DiskFS is the filesystem seam persistence goes through
	// (diskfault.OS is the passthrough default).
	DiskFS = diskfault.FS
	// DiskFaultPlan deterministically injects disk faults.
	DiskFaultPlan = diskfault.Plan
	// DiskFailSpec makes the k-th operation of a kind fail.
	DiskFailSpec = diskfault.FailSpec
	// DiskTornSpec truncates the k-th write and crash-stops.
	DiskTornSpec = diskfault.TornSpec
	// CheckpointCorruptError reports a checkpoint (and its rotated
	// fallback) that failed checksum verification.
	CheckpointCorruptError = checkpoint.CorruptError
)

// Network types.
type (
	// Network is an MI-weighted undirected gene network.
	Network = grn.Network
	// Edge is one undirected weighted edge.
	Edge = grn.Edge
	// Score holds precision/recall/F1 against a ground truth.
	Score = grn.Score
	// FilterOpts parameterizes the parallel DPI/CMI filters
	// (tolerance, workers, adjacency memory budget, spill dir).
	FilterOpts = grn.FilterOpts
	// FilterStats reports filter work: edges removed and adjacency
	// shard cache traffic.
	FilterStats = grn.FilterStats
	// RowFunc supplies rank-normalized expression rows to the CMI
	// filter.
	RowFunc = grn.RowFunc
)

// Filter defaults. Config.DPITolerance's zero value means strict DPI
// (tolerance 0); pass a negative value (or DefaultDPITolerance) for
// the paper's near-tie slack. Config.CMIRatio's zero value means
// DefaultCMIRatio.
const (
	// DefaultDPITolerance is the paper's DPI near-tie tolerance.
	DefaultDPITolerance = core.DefaultDPITolerance
	// DefaultCMIRatio is the default CMI/MI removal threshold.
	DefaultCMIRatio = core.DefaultCMIRatio
)

// Data types.
type (
	// Dataset is an expression matrix with gene names and (for
	// synthetic data) ground truth.
	Dataset = expr.Dataset
	// GenConfig parameterizes synthetic dataset generation.
	GenConfig = expr.GenConfig
	// Topology selects the synthetic regulatory graph family.
	Topology = expr.Topology
	// Matrix is a dense row-major float32 matrix (genes × experiments).
	Matrix = mat.Dense
)

// Hardware-model types.
type (
	// Device is a simulated chip description for the Phi engine.
	Device = phi.Device
	// Offload is the simulated PCIe link model.
	Offload = phi.Offload
	// Policy selects the tile scheduling strategy.
	Policy = tile.Policy
	// Work is one schedulable unit's cycle cost on a simulated device.
	Work = phi.Work
	// KernelParams describes an MI tile for device cost modeling.
	KernelParams = phi.KernelParams
	// Tile is a rectangular block of gene pairs.
	Tile = tile.Tile
)

// Engine selectors.
const (
	// Host runs on a goroutine pool.
	Host = core.Host
	// Phi runs with the simulated-coprocessor time model.
	Phi = core.Phi
	// Cluster runs over the in-process MPI runtime.
	Cluster = core.Cluster
	// Hybrid models concurrent host + coprocessor execution.
	Hybrid = core.Hybrid
	// OutOfCore runs the tile scan against a disk-backed panel store
	// under Config.MemoryBudget — the whole-genome-scale path, with
	// results bit-identical to Host for equal seeds.
	OutOfCore = core.OutOfCore
)

// PanelStore is a disk-backed gene-row store: streaming ingest spills
// fixed-height row panels to a temp file and an LRU keeps a budgeted
// set resident. It is what the OutOfCore engine scans instead of a
// resident matrix.
type PanelStore = panelstore.Store

// NewPanelStore creates an empty spill store: cols experiments per
// row, panelRows gene rows per panel (must match Config.PanelRows),
// and an in-memory panel byte budget. dir "" uses the OS temp dir.
func NewPanelStore(dir string, cols, panelRows int, budget int64) (*PanelStore, error) {
	return panelstore.New(dir, cols, panelRows, budget)
}

// InferStore runs the out-of-core pipeline against an ingested panel
// store — the streaming path where the expression matrix is never
// resident. The caller keeps ownership of the store (and must Close
// it). See core.InferStore.
func InferStore(store *PanelStore, cfg Config) (*Result, error) {
	return core.InferStore(store, cfg)
}

// InferStoreContext is InferStore with cancellation.
func InferStoreContext(ctx context.Context, store *PanelStore, cfg Config) (*Result, error) {
	return core.InferStoreContext(ctx, store, cfg)
}

// MinMemoryBudget reports the smallest Config.MemoryBudget an
// out-of-core run over genes×samples accepts under cfg — worker
// scratch, store buffers, and the pinned-panel floor. Sizing a run at
// exactly this budget maximizes spill traffic; production runs should
// add slack for the LRU to amortize re-reads. See core.MinMemoryBudget.
func MinMemoryBudget(genes, samples int, cfg Config) (int64, error) {
	return core.MinMemoryBudget(genes, samples, cfg)
}

// IngestExpressionTSV streams a header+rows expression TSV directly
// into a fresh panel store: parse → impute (row means) → spill, one
// row at a time, so peak ingest memory is one panel plus a row buffer.
// It returns the sealed store and the gene names in row order. On
// error the store is already closed.
func IngestExpressionTSV(r io.Reader, dir string, panelRows int, budget int64) (*PanelStore, []string, error) {
	var store *PanelStore
	genes, _, err := expr.StreamTSVRows(r, func(gene string, row []float32) error {
		if store == nil {
			var err error
			store, err = panelstore.New(dir, len(row), panelRows, budget)
			if err != nil {
				return err
			}
		}
		expr.ImputeRowMeanValues(row)
		return store.Append(row)
	})
	if err == nil {
		err = store.Seal()
	}
	if err != nil {
		if store != nil {
			store.Close()
		}
		return nil, nil, err
	}
	return store, genes, nil
}

// Kernel formulations.
const (
	// KernelBucketed (default) is the vectorization-friendly
	// sample-bucketing formulation.
	KernelBucketed = core.KernelBucketed
	// KernelVec is the dense per-bin-pair dot-product formulation
	// (wins on wide-SIMD hardware).
	KernelVec = core.KernelVec
	// KernelScalar is the naive scatter-histogram baseline.
	KernelScalar = core.KernelScalar
)

// Compute precisions.
const (
	// Float64 (default) accumulates histograms and entropies in double
	// precision.
	Float64 = core.Float64
	// Float32 runs the single-precision kernels — the paper's
	// native-float build: same edge set at default settings, half the
	// joint-accumulator footprint.
	Float32 = core.Float32
)

// Scheduling policies.
const (
	// StaticBlock assigns contiguous tile chunks per worker.
	StaticBlock = tile.StaticBlock
	// StaticCyclic deals tiles round-robin.
	StaticCyclic = tile.StaticCyclic
	// Dynamic uses a shared work queue (the paper's choice).
	Dynamic = tile.Dynamic
	// Stealing uses per-worker deques with work stealing.
	Stealing = tile.Stealing
)

// Synthetic topologies.
const (
	// ScaleFree grows the regulator graph by preferential attachment.
	ScaleFree = expr.ScaleFree
	// ErdosRenyi assigns regulators uniformly at random.
	ErdosRenyi = expr.ErdosRenyi
)

// XeonPhi5110P returns the paper's coprocessor model.
func XeonPhi5110P() Device { return phi.XeonPhi5110P() }

// PCIeGen2x16 returns the 5110P's simulated offload link.
func PCIeGen2x16() Offload { return phi.PCIeGen2x16() }

// PipelineTime returns total seconds for a transfer/compute pipeline,
// optionally double-buffered. See phi.PipelineTime.
func PipelineTime(transfers, computes []float64, doubleBuffered bool) float64 {
	return phi.PipelineTime(transfers, computes, doubleBuffered)
}

// DecomposePairs tiles the n-gene upper-triangular pair matrix into
// size×size blocks.
func DecomposePairs(n, size int) []Tile { return tile.Decompose(n, size) }

// TotalPairs returns n(n-1)/2.
func TotalPairs(n int) int { return tile.TotalPairs(n) }

// XeonE5 returns the paper's dual-socket host model.
func XeonE5() Device { return phi.XeonE5() }

// Profile is an instrumented run exposing per-tile costs for simulated
// scaling studies. See core.Profile.
type Profile = core.Profile

// TraceRecorder records per-worker execution spans; set it as
// Config.Trace and export with WriteChromeTrace.
type TraceRecorder = trace.Recorder

// NewTraceRecorder starts a trace recorder whose epoch is now.
func NewTraceRecorder() *TraceRecorder { return trace.NewRecorder() }

// Infer runs the pipeline on an expression matrix (rows = genes,
// columns = experiments). The matrix is not modified.
func Infer(m *Matrix, cfg Config) (*Result, error) { return core.Infer(m, cfg) }

// InferContext is Infer with cancellation; workers stop at the next
// tile boundary once ctx is done.
func InferContext(ctx context.Context, m *Matrix, cfg Config) (*Result, error) {
	return core.InferContext(ctx, m, cfg)
}

// ProfileTiles runs an instrumented Host-engine pass and returns the
// per-tile cost profile for replaying onto arbitrary worker counts and
// scheduling policies — how this reproduction simulates thread-scaling
// figures beyond the machine's physical core count.
func ProfileTiles(m *Matrix, cfg Config) (*Profile, error) { return core.ProfileTiles(m, cfg) }

// InferDataset runs the pipeline on a dataset's expression matrix.
func InferDataset(d *Dataset, cfg Config) (*Result, error) {
	return core.Infer(d.Expr, cfg)
}

// Generate builds a synthetic dataset with known ground truth.
func Generate(cfg GenConfig) (*Dataset, error) { return expr.Generate(cfg) }

// MustGenerate is Generate but panics on error.
func MustGenerate(cfg GenConfig) *Dataset { return expr.MustGenerate(cfg) }

// MatrixFromRows builds an expression matrix from per-gene rows,
// copying the data. Rows must have equal lengths.
func MatrixFromRows(rows [][]float32) *Matrix { return mat.FromRows(rows) }

// ReadExpressionTSV parses a header+rows expression TSV (as written by
// Dataset.WriteTSV or cmd/genexpr). It streams rows into one contiguous
// buffer (expr.StreamTSV), so peak ingest memory is the matrix itself
// rather than matrix plus a staged per-row copy.
func ReadExpressionTSV(r io.Reader) (*Dataset, error) { return expr.StreamTSV(r) }

// ReadSOFT parses an NCBI GEO SOFT family file (series with per-sample
// tables, or a dataset with a combined table) and assembles the
// expression matrix. Missing values come back as NaN; call
// Dataset.ImputeRowMean before inference.
func ReadSOFT(r io.Reader) (*Dataset, error) {
	f, err := soft.Parse(r)
	if err != nil {
		return nil, err
	}
	return f.Assemble()
}

// WriteSOFTSeries emits a dataset as a minimal SOFT series file.
func WriteSOFTSeries(w io.Writer, d *Dataset, title string) error {
	return soft.WriteSeries(w, d, title)
}

// ReadNetworkTSV parses a numeric "i<TAB>j<TAB>weight" edge list over n
// genes.
func ReadNetworkTSV(r io.Reader, n int) (*Network, error) { return grn.ReadTSV(r, n) }

// GaussianMI returns the analytic MI in bits between the components of
// a bivariate Gaussian with correlation rho — useful for validating
// estimator output.
func GaussianMI(rho float64) float64 { return mi.GaussianMI(rho) }

// BinningMI estimates MI (bits) by plain equal-width binning of values
// in [0,1] — the baseline estimator.
func BinningMI(x, y []float32, bins int) float64 { return mi.BinningMI(x, y, bins) }

// KSGMI estimates MI (bits) with the Kraskov k-nearest-neighbor
// estimator (brute force; for validation, not the pipeline hot path).
func KSGMI(x, y []float32, k int) float64 { return mi.KSG(x, y, k) }

// AdaptiveMI estimates MI (bits) with Darbellay–Vajda adaptive
// partitioning.
func AdaptiveMI(x, y []float32, minCell int) float64 { return mi.AdaptiveMI(x, y, minCell) }

// ConditionalMI estimates I(X;Y|Z) in bits by binning — the sharper
// successor to DPI for separating direct from indirect edges.
func ConditionalMI(x, y, z []float32, bins int) float64 { return mi.ConditionalMI(x, y, z, bins) }

// LaggedMI estimates I(X_t; Y_{t+lag}) from a time-series trajectory
// (see GenConfig.TimeSeries).
func LaggedMI(x, y []float32, lag, bins int) float64 { return mi.LaggedMI(x, y, lag, bins) }

// DirectionScore is LaggedMI(x→y) − LaggedMI(y→x): positive values are
// evidence that x regulates y.
func DirectionScore(x, y []float32, lag, bins int) float64 {
	return mi.DirectionScore(x, y, lag, bins)
}

// NewNetwork creates an empty network over n genes (exposed for tools
// that assemble networks from external edge lists).
func NewNetwork(n int) *Network { return grn.New(n) }

// CommunitySizes returns the member counts of a Communities labeling,
// sorted descending.
func CommunitySizes(labels []int) []int { return grn.CommunitySizes(labels) }

// FleetCoordinator fans scans out over a fleet of worker tinged
// instances, merging chunk results bit-identically to a single-process
// scan and caching completed scans by content address. See
// internal/fleet.
type FleetCoordinator = fleet.Coordinator

// FleetChunk is one unit of fleet fan-out: a contiguous pair-tile
// range of the scan.
type FleetChunk = fleet.Chunk

// NewFleet returns a coordinator over the given worker base URLs.
func NewFleet(workers []string) *FleetCoordinator { return fleet.New(workers) }

// PlanFleetChunks splits the n-gene pair triangle (tiled at tileSize)
// into at most chunks contiguous tile ranges with near-equal pair
// counts; the ranges partition combn(n,2) exactly.
func PlanFleetChunks(n, tileSize, chunks int) []FleetChunk {
	return fleet.PlanChunks(n, tileSize, chunks)
}
