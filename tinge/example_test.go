package tinge_test

import (
	"fmt"

	"repro/tinge"
)

// ExampleInferDataset shows the canonical flow: synthetic data with
// ground truth, inference with the paper's defaults, scoring.
func ExampleInferDataset() {
	data := tinge.MustGenerate(tinge.GenConfig{
		Genes: 20, Experiments: 100, AvgRegulators: 1, Noise: 0.05, Seed: 3,
	})
	res, err := tinge.InferDataset(data, tinge.Config{
		Seed: 3, Permutations: 10, Workers: 1, DPI: true, DPITolerance: 0.1,
	})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println("genes:", res.Network.N())
	fmt.Println("has edges:", res.Network.Len() > 0)
	fmt.Println("threshold positive:", res.Threshold > 0)
	// Output:
	// genes: 20
	// has edges: true
	// threshold positive: true
}

// ExampleGaussianMI documents the analytic reference used to validate
// the estimators.
func ExampleGaussianMI() {
	fmt.Printf("%.4f\n", tinge.GaussianMI(0))
	fmt.Printf("%.4f\n", tinge.GaussianMI(0.6))
	// Output:
	// 0.0000
	// 0.3219
}

// ExampleNetwork_DPI shows data-processing-inequality pruning removing
// the weakest edge of a triangle.
func ExampleNetwork_DPI() {
	net := tinge.NewNetwork(3)
	net.AddEdge(0, 1, 1.0)
	net.AddEdge(1, 2, 0.9)
	net.AddEdge(0, 2, 0.2) // indirect: explained by 0→1→2
	pruned := net.DPI(0.1)
	fmt.Println("before:", net.Len(), "after:", pruned.Len())
	_, kept := pruned.Weight(0, 2)
	fmt.Println("weak edge kept:", kept)
	// Output:
	// before: 3 after: 2
	// weak edge kept: false
}

// ExampleDevice_TileCost prices one pair-tile on the simulated Xeon Phi
// in both kernel formulations.
func ExampleDevice_TileCost() {
	dev := tinge.XeonPhi5110P()
	scalar := dev.TileCost(tinge.KernelParams{
		Pairs: 1, Samples: 3137, Order: 3, Bins: 10,
	})
	vec := dev.TileCost(tinge.KernelParams{
		Pairs: 1, Samples: 3137, Order: 3, Bins: 10, Vectorized: true,
	})
	fmt.Println("vectorized cheaper:", vec.ComputeCycles < scalar.ComputeCycles)
	// Output:
	// vectorized cheaper: true
}
