package tinge_test

import (
	"bytes"
	"context"
	"testing"

	"repro/tinge"
)

func TestSOFTWrappers(t *testing.T) {
	d := tinge.MustGenerate(tinge.GenConfig{Genes: 5, Experiments: 6, Seed: 8})
	var buf bytes.Buffer
	if err := tinge.WriteSOFTSeries(&buf, d, "GSE-W"); err != nil {
		t.Fatal(err)
	}
	back, err := tinge.ReadSOFT(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.N() != 5 || back.M() != 6 {
		t.Fatalf("round trip %dx%d", back.N(), back.M())
	}
	if _, err := tinge.ReadSOFT(bytes.NewReader([]byte("^BOGUS\n"))); err == nil {
		t.Fatal("bad SOFT should error")
	}
}

func TestInferContextWrapper(t *testing.T) {
	d := tinge.MustGenerate(tinge.GenConfig{Genes: 10, Experiments: 20, Seed: 9})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := tinge.InferContext(ctx, d.Expr, tinge.Config{Permutations: 5}); err == nil {
		t.Fatal("cancelled context should error")
	}
	res, err := tinge.InferContext(context.Background(), d.Expr, tinge.Config{
		Permutations: 5, Workers: 1,
	})
	if err != nil || res.Network == nil {
		t.Fatalf("normal context: %v", err)
	}
}

func TestProfileTilesWrapper(t *testing.T) {
	d := tinge.MustGenerate(tinge.GenConfig{Genes: 15, Experiments: 30, Seed: 10})
	prof, err := tinge.ProfileTiles(d.Expr, tinge.Config{Permutations: 5, Workers: 1, TileSize: 4})
	if err != nil {
		t.Fatal(err)
	}
	if prof.SimMakespan(4, tinge.Dynamic) <= 0 {
		t.Fatal("simulated makespan should be positive")
	}
	if len(prof.TileSeconds()) != len(prof.Tiles) {
		t.Fatal("TileSeconds length mismatch")
	}
}

func TestGeometryWrappers(t *testing.T) {
	if tinge.TotalPairs(10) != 45 {
		t.Fatalf("TotalPairs = %d", tinge.TotalPairs(10))
	}
	tiles := tinge.DecomposePairs(10, 4)
	total := 0
	for _, tl := range tiles {
		total += tl.Pairs()
	}
	if total != 45 {
		t.Fatalf("tile pairs = %d", total)
	}
}

func TestPipelineTimeWrapper(t *testing.T) {
	serial := tinge.PipelineTime([]float64{1, 1}, []float64{2, 2}, false)
	piped := tinge.PipelineTime([]float64{1, 1}, []float64{2, 2}, true)
	if serial != 6 || piped != 5 {
		t.Fatalf("pipeline = %v/%v, want 6/5", serial, piped)
	}
}

func TestOffloadWrapper(t *testing.T) {
	link := tinge.PCIeGen2x16()
	if link.BandwidthGBps != 6 {
		t.Fatalf("bandwidth = %v", link.BandwidthGBps)
	}
	if link.TransferTime(6e9) < 1 {
		t.Fatal("1 GB·s/GB transfer should take >= 1 s")
	}
}

func TestTraceWrapper(t *testing.T) {
	rec := tinge.NewTraceRecorder()
	done := rec.Span(0, "x")
	done()
	if rec.Len() != 1 {
		t.Fatalf("trace len = %d", rec.Len())
	}
	var buf bytes.Buffer
	if err := rec.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	if buf.Len() == 0 {
		t.Fatal("empty chrome trace")
	}
}

func TestCommunityWrapper(t *testing.T) {
	net := tinge.NewNetwork(4)
	net.AddEdge(0, 1, 1)
	net.AddEdge(2, 3, 1)
	labels := net.Communities(10, 1)
	sizes := tinge.CommunitySizes(labels)
	if len(sizes) != 2 || sizes[0] != 2 {
		t.Fatalf("community sizes = %v", sizes)
	}
}

func TestGenerateErrorWrapper(t *testing.T) {
	if _, err := tinge.Generate(tinge.GenConfig{Genes: -1, Experiments: 1}); err == nil {
		t.Fatal("bad config should error")
	}
}

func TestMatrixInferDirect(t *testing.T) {
	rows := [][]float32{{1, 2, 3, 4, 5}, {2, 4, 6, 8, 10}, {5, 3, 1, 2, 4}}
	m := tinge.MatrixFromRows(rows)
	res, err := tinge.Infer(m, tinge.Config{Permutations: 5, Workers: 1, Order: 2, Bins: 4})
	if err != nil {
		t.Fatal(err)
	}
	if res.Network.N() != 3 {
		t.Fatalf("N = %d", res.Network.N())
	}
}

func TestEstimatorWrappers(t *testing.T) {
	// Perfectly dependent uniform values: every estimator must see
	// strong dependence; on independent data they must not.
	x := make([]float32, 600)
	for i := range x {
		x[i] = float32((i*7919)%600) / 600
	}
	y := make([]float32, 600)
	copy(y, x)
	if tinge.BinningMI(x, y, 8) < 1 {
		t.Fatal("BinningMI on identical data too low")
	}
	if tinge.KSGMI(x, y, 4) < 1 {
		t.Fatal("KSGMI on identical data too low")
	}
	if tinge.AdaptiveMI(x, y, 8) < 1 {
		t.Fatal("AdaptiveMI on identical data too low")
	}
	if tinge.ConditionalMI(x, y, x, 6) > 0.2 {
		t.Fatal("conditioning on x should screen off x-y dependence")
	}
	if tinge.LaggedMI(x, y, 0, 8) != tinge.BinningMI(x, y, 8) {
		t.Fatal("lag-0 LaggedMI must equal BinningMI")
	}
	if s := tinge.DirectionScore(x, y, 1, 8); s > 1 || s < -1 {
		t.Fatalf("direction score of symmetric pair = %v", s)
	}
}

func TestTimeSeriesGeneration(t *testing.T) {
	d := tinge.MustGenerate(tinge.GenConfig{
		Genes: 10, Experiments: 200, TimeSeries: true, Seed: 12,
	})
	if d.N() != 10 || d.M() != 200 {
		t.Fatalf("shape %dx%d", d.N(), d.M())
	}
	if !d.Expr.IsFinite() {
		t.Fatal("trajectory not finite")
	}
}
