package repro

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// TestCLIPipeline builds the command binaries and drives the full
// user workflow: generate data → infer a network (with checkpointing
// and truth scoring) → analyze it — the same chain the README
// documents.
func TestCLIPipeline(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping binary integration test in -short mode")
	}
	dir := t.TempDir()
	bin := func(name string) string { return filepath.Join(dir, name) }
	for _, cmd := range []string{"genexpr", "tinge", "netstat"} {
		out, err := exec.Command("go", "build", "-o", bin(cmd), "./cmd/"+cmd).CombinedOutput()
		if err != nil {
			t.Fatalf("build %s: %v\n%s", cmd, err, out)
		}
	}

	exprPath := filepath.Join(dir, "expr.tsv")
	truthPath := filepath.Join(dir, "truth.tsv")
	netPath := filepath.Join(dir, "net.tsv")
	ckptPath := filepath.Join(dir, "run.ckpt")

	run := func(name string, args ...string) string {
		t.Helper()
		out, err := exec.Command(bin(name), args...).CombinedOutput()
		if err != nil {
			t.Fatalf("%s %v: %v\n%s", name, args, err, out)
		}
		return string(out)
	}

	run("genexpr", "-genes", "60", "-experiments", "80", "-seed", "3",
		"-out", exprPath, "-truth", truthPath)
	if fi, err := os.Stat(exprPath); err != nil || fi.Size() == 0 {
		t.Fatalf("expression file: %v", err)
	}

	out := run("tinge", "-in", exprPath, "-permutations", "8", "-dpi",
		"-names=false", "-out", netPath, "-truth", truthPath,
		"-checkpoint", ckptPath, "-seed", "3")
	if !strings.Contains(out, "vs truth: precision") {
		t.Fatalf("tinge output missing truth score:\n%s", out)
	}
	if _, err := os.Stat(ckptPath); err != nil {
		t.Fatalf("checkpoint not written: %v", err)
	}

	// Re-running over the finished checkpoint must do zero MI work and
	// produce the identical network.
	first, err := os.ReadFile(netPath)
	if err != nil {
		t.Fatal(err)
	}
	out = run("tinge", "-in", exprPath, "-permutations", "8", "-dpi",
		"-names=false", "-out", netPath, "-truth", truthPath,
		"-checkpoint", ckptPath, "-seed", "3")
	if !strings.Contains(out, "MI evaluations=0") {
		t.Fatalf("resume should need 0 evaluations:\n%s", out)
	}
	second, err := os.ReadFile(netPath)
	if err != nil {
		t.Fatal(err)
	}
	if string(first) != string(second) {
		t.Fatal("resumed network differs")
	}

	stats := run("netstat", "-in", netPath, "-n", "60", "-truth", truthPath, "-hubs", "3")
	for _, want := range []string{"loaded genes=60", "communities", "vs truth"} {
		if !strings.Contains(stats, want) {
			t.Fatalf("netstat output missing %q:\n%s", want, stats)
		}
	}
}

// TestCLISoftFormat round-trips a SOFT file through the tinge binary.
func TestCLISoftFormat(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping binary integration test in -short mode")
	}
	dir := t.TempDir()
	tingeBin := filepath.Join(dir, "tinge")
	if out, err := exec.Command("go", "build", "-o", tingeBin, "./cmd/tinge").CombinedOutput(); err != nil {
		t.Fatalf("build: %v\n%s", err, out)
	}
	// Hand-written minimal SOFT series.
	softPath := filepath.Join(dir, "series.soft")
	soft := `^SERIES = GSETEST
!Series_title = integration
`
	for s := 0; s < 12; s++ {
		soft += "^SAMPLE = GSM" + string(rune('A'+s)) + "\n!sample_table_begin\nID_REF\tVALUE\n"
		for g := 0; g < 8; g++ {
			soft += "P" + string(rune('0'+g)) + "\t" + []string{"0.1", "0.9", "0.4", "0.6"}[(g+s)%4] + "\n"
		}
		soft += "!sample_table_end\n"
	}
	if err := os.WriteFile(softPath, []byte(soft), 0o644); err != nil {
		t.Fatal(err)
	}
	out, err := exec.Command(tingeBin, "-in", softPath, "-format", "soft",
		"-permutations", "5", "-out", filepath.Join(dir, "net.tsv")).CombinedOutput()
	if err != nil {
		t.Fatalf("tinge soft: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "8 genes x 12 experiments") {
		t.Fatalf("unexpected summary:\n%s", out)
	}
}
