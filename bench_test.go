// Package repro's root benchmark file holds one testing.B benchmark per
// table/figure of the paper's evaluation (T1, T2, F1..F8, T3), matching
// the experiment index in DESIGN.md. The printable paper-style rows
// come from cmd/benchsuite; these benches give stable,
// `go test -bench`-able timings for each experiment's kernel.
package repro

import (
	"fmt"
	"testing"

	"repro/internal/bspline"
	"repro/internal/mi"
	"repro/internal/perm"
	"repro/internal/phi"
	"repro/internal/tile"
	"repro/tinge"
)

func benchDataset(b *testing.B, n, m int) *tinge.Dataset {
	b.Helper()
	return tinge.MustGenerate(tinge.GenConfig{
		Genes: n, Experiments: m, AvgRegulators: 2, Noise: 0.1, Seed: 1,
	})
}

// BenchmarkT1_DatasetGeneration covers Table 1: synthetic dataset
// construction at A.-thaliana-like shape (scaled).
func BenchmarkT1_DatasetGeneration(b *testing.B) {
	for _, n := range []int{250, 1000} {
		b.Run(fmt.Sprintf("n%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				benchDataset(b, n, 337)
			}
		})
	}
}

// BenchmarkT2_EndToEnd covers Table 2: the full pipeline (normalize,
// precompute, threshold, MI+permutation, DPI) on the host engine.
func BenchmarkT2_EndToEnd(b *testing.B) {
	for _, n := range []int{100, 250} {
		d := benchDataset(b, n, 337)
		b.Run(fmt.Sprintf("n%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := tinge.InferDataset(d, tinge.Config{
					Seed: 1, Permutations: 10, DPI: true, DPITolerance: 0.1,
				}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkF1_HostWorkers covers Figure 1: the MI phase at several
// worker counts (real goroutines; on a single-CPU machine the scaling
// curve comes from cmd/benchsuite's profiled simulation instead).
func BenchmarkF1_HostWorkers(b *testing.B) {
	d := benchDataset(b, 200, 256)
	for _, w := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("w%d", w), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := tinge.InferDataset(d, tinge.Config{
					Seed: 1, Permutations: 10, Workers: w,
				}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkF2_Kernels covers Figure 2: one MI evaluation per kernel
// formulation at the paper's sample count.
func BenchmarkF2_Kernels(b *testing.B) {
	d := benchDataset(b, 16, 3137)
	norm := d.Expr.Clone()
	norm.RankNormalize()
	est := mi.NewEstimator(bspline.Precompute(bspline.MustNew(3, 10), norm))
	ws := mi.NewWorkspace(est)
	b.Run("scalar", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			est.PairScalar(i%15, 15, ws)
		}
	})
	b.Run("bucketed", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			est.PairBucketed(i%15, 15, ws)
		}
	})
	b.Run("densevec", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			est.PairVec(i%15, 15, ws)
		}
	})
}

// BenchmarkF3_PhiMakespan covers Figure 3: scheduling the whole-genome
// tile set onto the simulated 60-core x 4-thread device.
func BenchmarkF3_PhiMakespan(b *testing.B) {
	dev := phi.XeonPhi5110P()
	tiles := tile.Decompose(2000, 32)
	items := make([]phi.Work, len(tiles))
	for i, tl := range tiles {
		items[i] = dev.TileCost(phi.KernelParams{
			Pairs: tl.Pairs(), Samples: 3137, Order: 3, Bins: 10, Perms: 3, Vectorized: true,
		})
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dev.Makespan(items, 4, tile.Dynamic)
	}
}

// BenchmarkF4_Schedulers covers Figure 4: simulated makespan of each
// scheduling policy over a skewed tile-cost distribution.
func BenchmarkF4_Schedulers(b *testing.B) {
	rng := perm.NewRNG(1)
	costs := make([]float64, 4000)
	for i := range costs {
		costs[i] = 1
		if rng.Float64() < 0.05 {
			costs[i] = 40 // permutation-test survivors
		}
	}
	for _, p := range []tile.Policy{tile.StaticBlock, tile.StaticCyclic, tile.Dynamic, tile.Stealing} {
		b.Run(p.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				tile.SimMakespan(costs, 64, p)
			}
		})
	}
}

// BenchmarkF5_Permutations covers Figure 5: pipeline cost at several
// permutation counts.
func BenchmarkF5_Permutations(b *testing.B) {
	d := benchDataset(b, 150, 256)
	for _, q := range []int{10, 30} {
		b.Run(fmt.Sprintf("q%d", q), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := tinge.InferDataset(d, tinge.Config{
					Seed: 1, Permutations: q,
				}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkF6_Cluster covers Figure 6: the MPI-style cluster engine at
// several world sizes (ranks share this machine; traffic and collective
// costs are what scale).
func BenchmarkF6_Cluster(b *testing.B) {
	d := benchDataset(b, 150, 256)
	for _, ranks := range []int{1, 4} {
		b.Run(fmt.Sprintf("ranks%d", ranks), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := tinge.InferDataset(d, tinge.Config{
					Engine: tinge.Cluster, Ranks: ranks, Seed: 1, Permutations: 10,
				}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkF7_OffloadPipeline covers Figure 7: pricing the chunked
// transfer/compute pipeline.
func BenchmarkF7_OffloadPipeline(b *testing.B) {
	link := phi.PCIeGen2x16()
	const chunks = 16
	transfers := make([]float64, chunks)
	computes := make([]float64, chunks)
	for i := range transfers {
		transfers[i] = link.TransferTime(1 << 26)
		computes[i] = 0.01
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		phi.PipelineTime(transfers, computes, true)
	}
}

// BenchmarkF8_DeviceComparison covers Figure 8: costing the same tile
// stream on the Xeon and Xeon Phi models.
func BenchmarkF8_DeviceComparison(b *testing.B) {
	tiles := tile.Decompose(2000, 32)
	for _, dev := range []phi.Device{phi.XeonE5(), phi.XeonPhi5110P()} {
		b.Run(dev.Name, func(b *testing.B) {
			items := make([]phi.Work, len(tiles))
			for i, tl := range tiles {
				items[i] = dev.TileCost(phi.KernelParams{
					Pairs: tl.Pairs(), Samples: 3137, Order: 3, Bins: 10, Perms: 3, Vectorized: true,
				})
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				dev.Makespan(items, dev.ThreadsPerCore, tile.Dynamic)
			}
		})
	}
}

// BenchmarkT3_EstimatorAccuracyKernel covers Table 3's workhorse: the
// double-precision reference estimator used for accuracy validation.
func BenchmarkT3_EstimatorAccuracyKernel(b *testing.B) {
	d := benchDataset(b, 2, 3137)
	norm := d.Expr.Clone()
	norm.RankNormalize()
	basis := bspline.MustNew(3, 10)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mi.PairReference(basis, norm.Row(0), norm.Row(1))
	}
}

// BenchmarkPermSweep contrasts the seed per-permutation decide loop
// (a fresh counting sort and permutation gather per evaluation) with
// the amortized sweep engine (i-side keys loaded once per pair; cached
// variant additionally streams precomputed permuted offset+weight
// rows). The observed MI is set above every permuted value so all q
// permutations run — the worst case, and the regime where surviving
// edges spend their time. The end-to-end counterpart (and the
// BENCH_permsweep.json artifact) comes from
// `go run ./cmd/benchsuite -exp PS`.
func BenchmarkPermSweep(b *testing.B) {
	const m, q = 337, 30
	d := benchDataset(b, 16, m)
	norm := d.Expr.Clone()
	norm.RankNormalize()
	est := mi.NewEstimator(bspline.Precompute(bspline.MustNew(3, 10), norm))
	ws := mi.NewWorkspace(est)
	pool := perm.MustNewPool(1, m, q)
	perms := pool.Perms()
	const obs = 1e9 // never exceeded: full q-permutation sweeps
	b.Run("legacy", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			j := 1 + i%15
			for p := 0; p < q; p++ {
				if est.PairPermutedBucketed(0, j, pool.Perm(p), ws) >= obs {
					b.Fatal("unexpected early exit")
				}
			}
		}
	})
	b.Run("sweep", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			j := 1 + i%15
			if _, survived := est.SweepBucketed(0, j, obs, perms, nil, nil, ws); !survived {
				b.Fatal("unexpected early exit")
			}
		}
	})
	b.Run("sweep-cached", func(b *testing.B) {
		cache := mi.NewPermCache(est, perms, 16)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			j := 1 + i%15
			poffs, pw := cache.Gene(j)
			if _, survived := est.SweepBucketed(0, j, obs, perms, poffs, pw, ws); !survived {
				b.Fatal("unexpected early exit")
			}
		}
	})
}

// BenchmarkPermutationReuse is the ablation DESIGN.md calls out:
// permuting precomputed weights vs recomputing weights on permuted raw
// data.
func BenchmarkPermutationReuse(b *testing.B) {
	d := benchDataset(b, 2, 1024)
	norm := d.Expr.Clone()
	norm.RankNormalize()
	est := mi.NewEstimator(bspline.Precompute(bspline.MustNew(3, 10), norm))
	ws := mi.NewWorkspace(est)
	p := perm.MustNewPool(1, 1024, 1).Perm(0)
	b.Run("reuse-weights", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			est.PairPermutedBucketed(0, 1, p, ws)
		}
	})
	b.Run("recompute-weights", func(b *testing.B) {
		basis := bspline.MustNew(3, 10)
		permuted := make([]float32, 1024)
		src := norm.Row(1)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for s, idx := range p {
				permuted[s] = src[idx]
			}
			mi.PairReference(basis, norm.Row(0), permuted)
		}
	})
}
